//! CTA: Cell-Type-Aware page-table protection (Wu et al., ASPLOS 2019).

use pthammer_dram::{DramGeometry, FlipModel};
use pthammer_kernel::{BuddyAllocator, DefenseKind, FramePurpose, PlacementPolicy};

use crate::{frames_per_row, row_of_frame, total_rows};

/// CTA's two layers of defense:
///
/// 1. Level-1 page tables are segregated into a dedicated region at the *top*
///    of physical memory (so, like CATT, user memory is never adjacent to
///    them).
/// 2. Within that region, only DRAM rows consisting purely of *true cells*
///    (cells that can only flip 1 → 0) are used, and L1PTs sit above every
///    user page; a flip can therefore only lower the frame number stored in
///    an L1PTE, which means the corrupted entry can never point at another
///    L1PT page.
///
/// The policy consults the DRAM module's weak-cell model to find true-cell
/// rows — in reality CTA performs a memory test at boot; the simulation has
/// the ground truth available, which is equivalent for placement purposes.
#[derive(Debug, Clone)]
pub struct CtaPolicy {
    geometry: DramGeometry,
    /// First row index of the protected L1PT region (top of memory).
    region_start_row: u64,
    /// Row indices (within the whole module) that contain only true cells.
    safe_rows: Vec<bool>,
}

impl CtaPolicy {
    /// Creates a CTA policy dedicating the top `l1pt_fraction` of row indices
    /// to Level-1 page tables, using `flip_model` as the boot-time cell-type
    /// test.
    ///
    /// # Panics
    ///
    /// Panics if `l1pt_fraction` is not in `(0, 1)`.
    pub fn new(geometry: &DramGeometry, flip_model: &FlipModel, l1pt_fraction: f64) -> Self {
        assert!(
            l1pt_fraction > 0.0 && l1pt_fraction < 1.0,
            "l1pt_fraction must be in (0, 1)"
        );
        let rows = total_rows(geometry);
        let region_start_row = rows - ((rows as f64) * l1pt_fraction) as u64;
        // A row index is safe if, in every bank, all of its weak cells (if
        // any) are true cells.
        let banks = geometry.total_banks();
        let safe_rows = (0..rows)
            .map(|row| {
                (0..banks).all(|bank| {
                    flip_model
                        .weak_cells(bank, row as u32)
                        .iter()
                        .all(|c| c.orientation == pthammer_types::CellOrientation::TrueCell)
                })
            })
            .collect();
        Self {
            geometry: *geometry,
            region_start_row,
            safe_rows,
        }
    }

    /// True when the frame lies in the protected L1PT region.
    pub fn frame_in_l1pt_region(&self, frame: u64) -> bool {
        row_of_frame(&self.geometry, frame) >= self.region_start_row
    }

    /// True when the frame's row consists only of true cells.
    pub fn frame_in_true_cell_row(&self, frame: u64) -> bool {
        let row = row_of_frame(&self.geometry, frame) as usize;
        self.safe_rows.get(row).copied().unwrap_or(false)
    }

    /// First row index of the protected region.
    pub fn region_start_row(&self) -> u64 {
        self.region_start_row
    }

    /// Number of true-cell-only rows in the module (for reporting).
    pub fn safe_row_count(&self) -> usize {
        self.safe_rows.iter().filter(|&&s| s).count()
    }

    /// Lowest physical frame of the protected region; every L1PT frame is at
    /// or above this, and every user frame below it — the monotonicity
    /// argument of CTA.
    pub fn region_first_frame(&self) -> u64 {
        self.region_start_row * frames_per_row(&self.geometry)
    }
}

impl PlacementPolicy for CtaPolicy {
    fn name(&self) -> &str {
        "CTA (true-cell L1PT region with monotonic pointers)"
    }

    fn kind(&self) -> DefenseKind {
        DefenseKind::Cta
    }

    fn allocate(&mut self, purpose: FramePurpose, buddy: &mut BuddyAllocator) -> Option<u64> {
        match purpose {
            FramePurpose::PageTable { level: 1, .. } => {
                // Highest true-cell frame in the protected region.
                let this = &*self;
                buddy.alloc_frame_filtered(
                    |f| this.frame_in_l1pt_region(f) && this.frame_in_true_cell_row(f),
                    true,
                )
            }
            // Upper-level page tables and kernel data live below the L1PT
            // region but above user memory (allocated from the top of the
            // unprotected part).
            FramePurpose::PageTable { .. } | FramePurpose::KernelData => {
                let limit = self.region_first_frame();
                buddy.alloc_frame_filtered(|f| f < limit, true)
            }
            // User pages use the default bottom-up allocation, guaranteeing
            // they sit below every L1PT frame.
            FramePurpose::UserPage { .. } => {
                let limit = self.region_first_frame();
                buddy.alloc_frame_filtered(|f| f < limit, false)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pthammer_dram::FlipModelProfile;

    fn setup() -> (DramGeometry, FlipModel) {
        let g = DramGeometry::small_1gib();
        // Moderate weak-cell density with mostly true cells, so that
        // true-cell-only rows exist (as on real DDR3 modules, where weak
        // cells are rare) while some rows still contain anti cells.
        let profile = FlipModelProfile {
            weak_row_density: 0.1,
            true_cell_fraction: 0.9,
            ..FlipModelProfile::fast()
        };
        let model = FlipModel::new(profile, 11, g.row_bytes);
        (g, model)
    }

    #[test]
    fn l1pts_go_to_top_true_cell_rows() {
        let (g, model) = setup();
        let mut cta = CtaPolicy::new(&g, &model, 0.2);
        let mut buddy = BuddyAllocator::new(16, g.total_frames());
        for _ in 0..50 {
            let f = cta
                .allocate(FramePurpose::PageTable { level: 1, pid: 1 }, &mut buddy)
                .unwrap();
            assert!(cta.frame_in_l1pt_region(f));
            assert!(cta.frame_in_true_cell_row(f));
        }
    }

    #[test]
    fn user_frames_are_always_below_l1pt_frames() {
        let (g, model) = setup();
        let mut cta = CtaPolicy::new(&g, &model, 0.2);
        let mut buddy = BuddyAllocator::new(16, g.total_frames());
        let l1pt = cta
            .allocate(FramePurpose::PageTable { level: 1, pid: 1 }, &mut buddy)
            .unwrap();
        for _ in 0..200 {
            let user = cta
                .allocate(FramePurpose::UserPage { pid: 1 }, &mut buddy)
                .unwrap();
            assert!(
                user < l1pt,
                "user frame {user} must be below L1PT frame {l1pt}"
            );
        }
    }

    #[test]
    fn monotonicity_a_downward_flip_cannot_reach_an_l1pt() {
        let (g, model) = setup();
        let mut cta = CtaPolicy::new(&g, &model, 0.2);
        let mut buddy = BuddyAllocator::new(16, g.total_frames());
        let l1pt = cta
            .allocate(FramePurpose::PageTable { level: 1, pid: 1 }, &mut buddy)
            .unwrap();
        let user = cta
            .allocate(FramePurpose::UserPage { pid: 1 }, &mut buddy)
            .unwrap();
        // A true-cell flip can only clear bits of the frame number stored in
        // an L1PTE, i.e. produce a strictly smaller frame number. Any frame
        // number smaller than the original user frame is still below the
        // protected region.
        for bit in 0..20u32 {
            let flipped = user & !(1 << bit);
            assert!(
                flipped < cta.region_first_frame(),
                "flipped frame {flipped} must not reach the L1PT region"
            );
        }
        assert!(l1pt >= cta.region_first_frame());
    }

    #[test]
    fn true_cell_rows_exist_and_are_a_subset() {
        let (g, model) = setup();
        let cta = CtaPolicy::new(&g, &model, 0.2);
        let safe = cta.safe_row_count();
        let rows = total_rows(&g) as usize;
        assert!(safe > 0, "there should be some all-true-cell rows");
        assert!(safe < rows, "the ci profile has anti-cell rows too");
    }

    #[test]
    fn upper_level_tables_below_region() {
        let (g, model) = setup();
        let mut cta = CtaPolicy::new(&g, &model, 0.2);
        let mut buddy = BuddyAllocator::new(16, g.total_frames());
        let pml4 = cta
            .allocate(FramePurpose::PageTable { level: 4, pid: 1 }, &mut buddy)
            .unwrap();
        assert!(pml4 < cta.region_first_frame());
    }

    #[test]
    #[should_panic(expected = "l1pt_fraction")]
    fn invalid_fraction_rejected() {
        let (g, model) = setup();
        let _ = CtaPolicy::new(&g, &model, 0.0);
    }
}

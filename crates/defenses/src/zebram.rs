//! ZebRAM-style guard-row interleaving (Konoth et al., OSDI 2018).

use pthammer_dram::DramGeometry;
use pthammer_kernel::{BuddyAllocator, DefenseKind, FramePurpose, PlacementPolicy};

use crate::row_of_frame;

/// ZebRAM places all usable data in alternating DRAM rows, keeping the rows
/// in between as unused guard rows (in the real system the guard rows hold an
/// integrity-protected swap cache; modelling them as unused is the strongest
/// version of the defense). Because every aggressor row's neighbours are
/// guard rows, rowhammer flips land in memory nobody relies on.
///
/// The paper explicitly lists ZebRAM as a defense PThammer does *not*
/// overcome; the defense-evaluation benchmark reproduces that negative
/// result.
#[derive(Debug, Clone)]
pub struct ZebramPolicy {
    geometry: DramGeometry,
}

impl ZebramPolicy {
    /// Creates a ZebRAM policy for the given DRAM geometry.
    pub fn new(geometry: &DramGeometry) -> Self {
        Self {
            geometry: *geometry,
        }
    }

    /// True when the frame lies in a usable (even) row.
    pub fn frame_is_usable(&self, frame: u64) -> bool {
        row_of_frame(&self.geometry, frame).is_multiple_of(2)
    }
}

impl PlacementPolicy for ZebramPolicy {
    fn name(&self) -> &str {
        "ZebRAM (guard-row interleaving)"
    }

    fn kind(&self) -> DefenseKind {
        DefenseKind::Zebram
    }

    fn allocate(&mut self, _purpose: FramePurpose, buddy: &mut BuddyAllocator) -> Option<u64> {
        buddy.alloc_frame_filtered(|f| self.frame_is_usable(f), false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frames_per_row;

    #[test]
    fn all_allocations_land_in_even_rows() {
        let g = DramGeometry::small_1gib();
        let mut policy = ZebramPolicy::new(&g);
        let mut buddy = BuddyAllocator::new(16, g.total_frames());
        for purpose in [
            FramePurpose::PageTable { level: 1, pid: 1 },
            FramePurpose::UserPage { pid: 1 },
            FramePurpose::KernelData,
        ] {
            for _ in 0..50 {
                let f = policy.allocate(purpose, &mut buddy).unwrap();
                assert_eq!(row_of_frame(&g, f) % 2, 0);
            }
        }
    }

    #[test]
    fn adjacent_rows_of_any_allocation_are_guard_rows() {
        let g = DramGeometry::small_1gib();
        let mut policy = ZebramPolicy::new(&g);
        let mut buddy = BuddyAllocator::new(16, g.total_frames());
        let f = policy
            .allocate(FramePurpose::PageTable { level: 1, pid: 1 }, &mut buddy)
            .unwrap();
        let row = row_of_frame(&g, f);
        for neighbour in [row.wrapping_sub(1), row + 1] {
            if neighbour < g.capacity_bytes() / g.row_span_bytes() {
                // Guard rows are odd rows, never handed out.
                assert_eq!(neighbour % 2, 1);
            }
        }
        let _ = frames_per_row(&g);
    }

    #[test]
    fn policy_name_mentions_zebram() {
        let g = DramGeometry::small_1gib();
        assert!(ZebramPolicy::new(&g).name().contains("ZebRAM"));
    }
}

//! RIP-RH: Rowhammer-induced inter-process isolation (Bock et al., AsiaCCS 2019).

use std::collections::HashMap;

use pthammer_dram::DramGeometry;
use pthammer_kernel::{BuddyAllocator, DefenseKind, FramePurpose, PlacementPolicy};

use crate::{frames_per_row, row_of_frame, total_rows};

/// RIP-RH isolates *user processes* from one another by giving each process a
/// dedicated band of DRAM rows (with guard rows between bands). It does not
/// protect kernel memory, so page tables and kernel data fall back to the
/// default lowest-frame allocation — which is exactly why PThammer applies to
/// it unchanged (Section IV-G2 of the paper).
#[derive(Debug, Clone)]
pub struct RipRhPolicy {
    geometry: DramGeometry,
    /// Number of row indices in each per-process band.
    rows_per_process: u64,
    /// Guard rows between bands.
    guard_rows: u64,
    /// First row index available for user bands (above the kernel's share).
    first_user_row: u64,
    /// Assigned band start row per pid.
    bands: HashMap<u32, u64>,
    /// Next band start row.
    next_band_row: u64,
}

impl RipRhPolicy {
    /// Creates a RIP-RH policy. `rows_per_process` row indices are dedicated
    /// to each user process, separated by `guard_rows`.
    pub fn new(geometry: &DramGeometry, rows_per_process: u64, guard_rows: u64) -> Self {
        let rows = total_rows(geometry);
        // Reserve the lowest quarter of rows for the (unprotected) kernel.
        let first_user_row = rows / 4;
        Self {
            geometry: *geometry,
            rows_per_process: rows_per_process.max(1),
            guard_rows,
            first_user_row,
            bands: HashMap::new(),
            next_band_row: first_user_row,
        }
    }

    /// The row band assigned to `pid`, if any.
    pub fn band_of(&self, pid: u32) -> Option<(u64, u64)> {
        self.bands
            .get(&pid)
            .map(|&start| (start, start + self.rows_per_process))
    }

    fn band_for(&mut self, pid: u32) -> (u64, u64) {
        if let Some(band) = self.band_of(pid) {
            return band;
        }
        let start = self.next_band_row;
        self.next_band_row = start + self.rows_per_process + self.guard_rows;
        self.bands.insert(pid, start);
        (start, start + self.rows_per_process)
    }

    /// First row index available to user processes.
    pub fn first_user_row(&self) -> u64 {
        self.first_user_row
    }
}

impl PlacementPolicy for RipRhPolicy {
    fn name(&self) -> &str {
        "RIP-RH (per-process DRAM partitioning)"
    }

    fn kind(&self) -> DefenseKind {
        DefenseKind::RipRh
    }

    fn allocate(&mut self, purpose: FramePurpose, buddy: &mut BuddyAllocator) -> Option<u64> {
        match purpose {
            FramePurpose::UserPage { pid } => {
                let (start_row, end_row) = self.band_for(pid);
                let fpr = frames_per_row(&self.geometry);
                let geometry = self.geometry;
                buddy
                    .alloc_frame_filtered(
                        |f| {
                            let row = row_of_frame(&geometry, f);
                            row >= start_row && row < end_row
                        },
                        false,
                    )
                    // If the band is exhausted, RIP-RH would grow it; we fall back
                    // to any frame above the kernel share.
                    .or_else(|| {
                        let min_frame = self.first_user_row * fpr;
                        buddy.alloc_frame_filtered(|f| f >= min_frame, false)
                    })
            }
            // Kernel memory (including all page tables) is not protected.
            FramePurpose::PageTable { .. } | FramePurpose::KernelData => buddy.alloc_frame(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> DramGeometry {
        DramGeometry::small_1gib()
    }

    #[test]
    fn each_process_gets_its_own_band() {
        let g = geometry();
        let mut policy = RipRhPolicy::new(&g, 8, 2);
        let mut buddy = BuddyAllocator::new(16, g.total_frames());
        let f1 = policy
            .allocate(FramePurpose::UserPage { pid: 1 }, &mut buddy)
            .unwrap();
        let f2 = policy
            .allocate(FramePurpose::UserPage { pid: 2 }, &mut buddy)
            .unwrap();
        let band1 = policy.band_of(1).unwrap();
        let band2 = policy.band_of(2).unwrap();
        assert_ne!(band1, band2);
        let row1 = row_of_frame(&g, f1);
        let row2 = row_of_frame(&g, f2);
        assert!(row1 >= band1.0 && row1 < band1.1);
        assert!(row2 >= band2.0 && row2 < band2.1);
        // Bands are separated by at least the guard distance.
        assert!(band2.0 >= band1.1 + 2 || band1.0 >= band2.1 + 2);
    }

    #[test]
    fn kernel_allocations_are_unconstrained_low_memory() {
        let g = geometry();
        let mut policy = RipRhPolicy::new(&g, 8, 2);
        let mut buddy = BuddyAllocator::new(16, g.total_frames());
        let pt = policy
            .allocate(FramePurpose::PageTable { level: 1, pid: 1 }, &mut buddy)
            .unwrap();
        let user = policy
            .allocate(FramePurpose::UserPage { pid: 1 }, &mut buddy)
            .unwrap();
        assert!(row_of_frame(&g, pt) < policy.first_user_row());
        assert!(row_of_frame(&g, user) >= policy.first_user_row());
    }

    #[test]
    fn same_process_allocations_stay_in_band_until_exhausted() {
        let g = geometry();
        let mut policy = RipRhPolicy::new(&g, 2, 1);
        let mut buddy = BuddyAllocator::new(16, g.total_frames());
        let band = {
            policy
                .allocate(FramePurpose::UserPage { pid: 9 }, &mut buddy)
                .unwrap();
            policy.band_of(9).unwrap()
        };
        let fpr = frames_per_row(&g);
        let band_capacity = (band.1 - band.0) * fpr;
        let mut outside = 0;
        for _ in 0..band_capacity + 10 {
            let f = policy
                .allocate(FramePurpose::UserPage { pid: 9 }, &mut buddy)
                .unwrap();
            let row = row_of_frame(&g, f);
            if !(row >= band.0 && row < band.1) {
                outside += 1;
            }
        }
        // Only the overflow allocations spill outside the band.
        assert!(outside <= 11);
        assert!(outside >= 1, "band should eventually be exhausted");
    }
}

//! Determinism contract of the DRAM substrate: identical seeds must produce
//! identical weak cells and identical flip sequences, with and without TRR.
//! The campaign harness's golden-snapshot tier is built on this property.

use pthammer_dram::{DramConfig, DramModule, FlipEvent, FlipModel, FlipModelProfile, TrrConfig};
use pthammer_types::{Cycles, PhysAddr};

/// Hammers two aggressor rows in one bank and returns every emitted flip in
/// order.
fn hammer_flip_sequence(seed: u64, trr: TrrConfig, iterations: u64) -> Vec<FlipEvent> {
    let mut config = DramConfig::ddr3_8gib(FlipModelProfile::ci(), seed);
    config.trr = trr;
    let row_span = config.geometry.row_span_bytes();
    let mut dram = DramModule::new(config);
    let mut flips = Vec::new();
    let mut now = 0u64;
    for _ in 0..iterations {
        for aggressor in [10 * row_span, 12 * row_span] {
            now += 100;
            let out = dram.access(PhysAddr::new(aggressor), Cycles::new(now));
            flips.extend(out.flips);
        }
    }
    flips
}

#[test]
fn same_seed_produces_identical_flip_sequences() {
    let a = hammer_flip_sequence(41, TrrConfig::disabled(), 3_000);
    let b = hammer_flip_sequence(41, TrrConfig::disabled(), 3_000);
    assert!(!a.is_empty(), "ci profile must flip within 3000 iterations");
    assert_eq!(a, b, "flip sequence must be a pure function of the seed");
}

#[test]
fn different_seeds_produce_different_weak_cells() {
    let a = hammer_flip_sequence(41, TrrConfig::disabled(), 3_000);
    let b = hammer_flip_sequence(42, TrrConfig::disabled(), 3_000);
    assert_ne!(a, b, "different DRAM seeds should differ somewhere");
}

#[test]
fn trr_sampling_is_deterministic_too() {
    let trr = TrrConfig::enabled(500, 2);
    let a = hammer_flip_sequence(7, trr, 3_000);
    let b = hammer_flip_sequence(7, trr, 3_000);
    assert_eq!(a, b, "TRR sampler decisions must be deterministic");
    // And TRR must actually change behaviour relative to no TRR.
    let without = hammer_flip_sequence(7, TrrConfig::disabled(), 3_000);
    assert!(
        a.len() <= without.len(),
        "TRR should never increase the flip count ({} > {})",
        a.len(),
        without.len()
    );
}

#[test]
fn flip_model_weak_cells_are_a_pure_function_of_coordinates() {
    let model_a = FlipModel::new(FlipModelProfile::fast(), 99, 8192);
    let model_b = FlipModel::new(FlipModelProfile::fast(), 99, 8192);
    for bank in 0..4u32 {
        for row in [0u32, 1, 100, 4_095] {
            assert_eq!(
                model_a.weak_cells(bank, row),
                model_b.weak_cells(bank, row),
                "weak cells for bank {bank} row {row} must match"
            );
        }
    }
    let model_c = FlipModel::new(FlipModelProfile::fast(), 100, 8192);
    let diverges = (0..256u32).any(|row| model_a.weak_cells(0, row) != model_c.weak_cells(0, row));
    assert!(diverges, "distinct seeds must change the weak-cell layout");
}

//! Aggregate statistics collected by the DRAM model.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Counters accumulated over the lifetime of a [`DramModule`](crate::DramModule).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Total accesses served.
    pub accesses: u64,
    /// Accesses that hit an open row buffer.
    pub row_hits: u64,
    /// Accesses to banks with no open row.
    pub row_misses: u64,
    /// Accesses that conflicted with a different open row.
    pub row_conflicts: u64,
    /// Total row activations (misses + conflicts).
    pub activations: u64,
    /// Refresh-window rollovers observed.
    pub refresh_windows: u64,
    /// Targeted refreshes issued by TRR.
    pub trr_refreshes: u64,
    /// Bit-flip events emitted.
    pub flips: u64,
}

impl DramStats {
    /// Fraction of accesses that hit the row buffer (0 when no accesses).
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }
}

impl fmt::Display for DramStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accesses={} hits={} misses={} conflicts={} activations={} refresh_windows={} trr={} flips={}",
            self.accesses,
            self.row_hits,
            self.row_misses,
            self.row_conflicts,
            self.activations,
            self.refresh_windows,
            self.trr_refreshes,
            self.flips
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero_accesses() {
        let s = DramStats::default();
        assert_eq!(s.row_hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_computation() {
        let s = DramStats {
            accesses: 10,
            row_hits: 4,
            ..Default::default()
        };
        assert!((s.row_hit_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!DramStats::default().to_string().is_empty());
    }
}

//! Per-bank DRAM state: row buffer, activation bookkeeping and disturbance
//! accumulation within refresh windows.

use serde::{Deserialize, Serialize};

use pthammer_types::{Cycles, DetHashSet};

use crate::{
    row_buffer::{RowBuffer, RowBufferOutcome, RowBufferPolicy},
    rows::RowStateSoA,
    timing::DramTimings,
    trr::{TrrConfig, TrrSampler},
    vulnerability::{FlipModel, WeakCell},
};

/// Result of a single access to a bank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankAccessResult {
    /// Row-buffer outcome for the access.
    pub outcome: RowBufferOutcome,
    /// Weak cells that crossed their disturbance threshold because of this
    /// access: `(victim_row, cell, disturbance_at_flip)`.
    pub flips: Vec<(u32, WeakCell, u32)>,
    /// Whether a refresh-window rollover happened before this access.
    pub window_rolled: bool,
    /// Whether TRR issued a targeted refresh because of this access.
    pub trr_fired: bool,
}

/// State of one (channel, rank, bank) unit.
///
/// A bank tracks, per refresh window, how many times each row was activated
/// and how much *disturbance* (adjacent-row activations) each potential victim
/// row has accumulated. When a weak cell's threshold is crossed, the bank
/// reports a flip.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bank {
    unit_id: u32,
    rows: u32,
    row_buffer: RowBuffer,
    window_start: Cycles,
    /// Per-row window bookkeeping (activation counts, last-activation
    /// times, disturbance) in structure-of-arrays layout. Two to three
    /// row-state probes run per activation on the hammer loop's hot path,
    /// so each counter kind is a flat dense `u32` array (index = row)
    /// rather than a map or an array of structs.
    row_state: RowStateSoA,
    /// Weak cells that already fired this window (avoid duplicate events).
    /// Only consulted once a victim crosses the profile's minimum threshold,
    /// so a (fast-hashed) set is fine here.
    emitted: DetHashSet<(u32, u32)>,
    #[serde(skip)]
    trr_sampler: TrrSampler,
}

/// A restorable snapshot of a bank's hammer-relevant state: row buffer,
/// refresh-window bookkeeping, the structure-of-arrays row counters, the
/// emitted-flip set and the TRR sampler. Taken at schedule boundaries by the
/// pattern synthesizer's incremental scorer, so a mutated schedule can
/// resume evaluation from a shared prefix instead of replaying it.
#[derive(Debug, Clone, PartialEq)]
pub struct BankCheckpoint {
    row_buffer: RowBuffer,
    window_start: Cycles,
    row_state: RowStateSoA,
    emitted: DetHashSet<(u32, u32)>,
    trr_sampler: TrrSampler,
}

impl Bank {
    /// Creates a bank with `rows` rows, identified by `unit_id`.
    pub fn new(unit_id: u32, rows: u32) -> Self {
        Self {
            unit_id,
            rows,
            row_buffer: RowBuffer::new(),
            window_start: Cycles::ZERO,
            row_state: RowStateSoA::new(rows),
            emitted: DetHashSet::default(),
            trr_sampler: TrrSampler::default(),
        }
    }

    /// The flat (channel, rank, bank) identifier of this bank.
    pub fn unit_id(&self) -> u32 {
        self.unit_id
    }

    /// Current disturbance accumulated by `row` in this refresh window.
    pub fn disturbance_of(&self, row: u32) -> u32 {
        self.row_state.disturbance_of(row)
    }

    /// Current activation count of `row` in this refresh window.
    pub fn activations_of(&self, row: u32) -> u32 {
        self.row_state.activations_of(row)
    }

    /// Window-relative cycle of `row`'s most recent activation in this
    /// refresh window, or `None` when the row has not been activated yet.
    pub fn last_activation_of(&self, row: u32) -> Option<u32> {
        self.row_state.last_activation_of(row)
    }

    /// The currently open row of this bank's row buffer, if any.
    pub fn open_row(&self) -> Option<u32> {
        self.row_buffer.open_row()
    }

    /// The TRR sampler's tracked `(row, activation count)` entries in
    /// recency order (front = coldest). Read-only introspection for the
    /// synthesizer's incremental scorer, which keys its round-boundary
    /// checkpoints on `(open_row, sampler state)` — under the open-page
    /// policy these two fully determine a bank's future activation and
    /// targeted-refresh behaviour within a refresh window.
    pub fn trr_tracked(&self) -> &[(u32, u32)] {
        self.trr_sampler.tracked()
    }

    /// Snapshots the bank's hammer-relevant state. Restoring the checkpoint
    /// with [`Bank::restore`] resumes the simulation bit-identically from
    /// the snapshot point.
    pub fn checkpoint(&self) -> BankCheckpoint {
        BankCheckpoint {
            row_buffer: self.row_buffer.clone(),
            window_start: self.window_start,
            row_state: self.row_state.clone(),
            emitted: self.emitted.clone(),
            trr_sampler: self.trr_sampler.clone(),
        }
    }

    /// Restores state previously captured by [`Bank::checkpoint`].
    pub fn restore(&mut self, checkpoint: &BankCheckpoint) {
        self.row_buffer = checkpoint.row_buffer.clone();
        self.window_start = checkpoint.window_start;
        self.row_state = checkpoint.row_state.clone();
        self.emitted = checkpoint.emitted.clone();
        self.trr_sampler = checkpoint.trr_sampler.clone();
    }

    /// Handles a refresh-window rollover if `now` is past the window end.
    /// Returns the number of windows that elapsed.
    fn roll_window(&mut self, now: Cycles, timings: &DramTimings) -> u64 {
        let window = timings.refresh_window;
        let elapsed = now.saturating_sub(self.window_start).as_u64();
        if elapsed < window {
            return 0;
        }
        let windows = elapsed / window;
        self.window_start = Cycles::new(self.window_start.as_u64() + windows * window);
        self.row_state.clear();
        self.emitted.clear();
        self.trr_sampler.reset();
        // A refresh closes any open row.
        self.row_buffer.close();
        windows
    }

    /// Performs an access to `row` at time `now`.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn access(
        &mut self,
        row: u32,
        now: Cycles,
        timings: &DramTimings,
        policy: RowBufferPolicy,
        flip_model: &FlipModel,
        trr: &TrrConfig,
    ) -> BankAccessResult {
        let window_rolled = self.roll_window(now, timings) > 0;
        let outcome = self.row_buffer.access(row, now, policy);
        let mut flips = Vec::new();
        let mut trr_fired = false;

        if outcome.activated() {
            self.row_state
                .record_activation(row, now.saturating_sub(self.window_start).as_u64());

            if let Some(aggressor) = self.trr_sampler.record(row, trr) {
                trr_fired = true;
                // Targeted refresh of the aggressor's neighbours clears their
                // accumulated disturbance.
                if aggressor > 0 {
                    self.row_state.clear_disturbance(aggressor - 1);
                }
                if aggressor + 1 < self.rows {
                    self.row_state.clear_disturbance(aggressor + 1);
                }
            }

            for victim in neighbours(row, self.rows) {
                let disturbance = self.row_state.add_disturbance(victim);
                // No weak cell's threshold is below the profile minimum, so
                // the (comparatively expensive) weak-cell derivation can be
                // skipped until the victim's disturbance reaches it.
                if disturbance < flip_model.profile().min_threshold {
                    continue;
                }
                for (idx, cell) in flip_model
                    .weak_cells(self.unit_id, victim)
                    .iter()
                    .enumerate()
                {
                    if disturbance >= cell.threshold && self.emitted.insert((victim, idx as u32)) {
                        flips.push((victim, *cell, disturbance));
                    }
                }
            }
        }

        BankAccessResult {
            outcome,
            flips,
            window_rolled,
            trr_fired,
        }
    }
}

/// Rows adjacent to `row` within a bank of `rows` rows.
fn neighbours(row: u32, rows: u32) -> impl Iterator<Item = u32> {
    let below = row.checked_sub(1);
    let above = if row + 1 < rows { Some(row + 1) } else { None };
    below.into_iter().chain(above)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vulnerability::FlipModelProfile;

    fn fast_model() -> FlipModel {
        FlipModel::new(FlipModelProfile::ci(), 99, 8192)
    }

    fn timings() -> DramTimings {
        DramTimings::fast_test()
    }

    /// Finds a row whose neighbour `victim = row + 1` is weak, so hammering
    /// `row` and `row + 2` disturbs it (double-sided).
    fn find_weak_victim(model: &FlipModel, bank: u32) -> (u32, u32) {
        for victim in 1..1000u32 {
            if model.row_is_weak(bank, victim) {
                return (victim - 1, victim);
            }
        }
        panic!("ci profile should contain a weak row in the first 1000 rows");
    }

    #[test]
    fn neighbours_respects_bounds() {
        assert_eq!(neighbours(0, 10).collect::<Vec<_>>(), vec![1]);
        assert_eq!(neighbours(5, 10).collect::<Vec<_>>(), vec![4, 6]);
        assert_eq!(neighbours(9, 10).collect::<Vec<_>>(), vec![8]);
        assert_eq!(neighbours(0, 1).collect::<Vec<_>>(), Vec::<u32>::new());
    }

    #[test]
    fn double_sided_hammering_flips_weak_cell() {
        let model = fast_model();
        let mut bank = Bank::new(0, 1024);
        let (aggr_low, victim) = find_weak_victim(&model, 0);
        let aggr_high = victim + 1;
        let trr = TrrConfig::disabled();
        let mut flips = Vec::new();
        let mut now = Cycles::ZERO;
        for _ in 0..1000 {
            for row in [aggr_low, aggr_high] {
                let res = bank.access(
                    row,
                    now,
                    &timings(),
                    RowBufferPolicy::OpenPage,
                    &model,
                    &trr,
                );
                flips.extend(res.flips);
                now += Cycles::new(300);
            }
        }
        assert!(
            flips.iter().any(|(row, _, _)| *row == victim),
            "expected a flip in victim row {victim}"
        );
        // Every reported flip is in a row adjacent to one of the aggressors.
        for (row, _, disturbance) in &flips {
            assert!(
                row.abs_diff(aggr_low) <= 1 || row.abs_diff(aggr_high) <= 1,
                "unexpected victim row {row}"
            );
            assert!(*disturbance >= FlipModelProfile::ci().min_threshold);
        }
    }

    #[test]
    fn hammering_below_threshold_never_flips() {
        let model = fast_model();
        let mut bank = Bank::new(0, 1024);
        let (aggr_low, victim) = find_weak_victim(&model, 0);
        let trr = TrrConfig::disabled();
        let min_threshold = FlipModelProfile::ci().min_threshold;
        let mut now = Cycles::ZERO;
        let mut flips = 0;
        // Fewer activations than any threshold: no flips possible.
        for _ in 0..(min_threshold / 2) {
            let res = bank.access(
                aggr_low,
                now,
                &timings(),
                RowBufferPolicy::OpenPage,
                &model,
                &trr,
            );
            flips += res.flips.len();
            now += Cycles::new(10);
        }
        assert_eq!(flips, 0);
        assert!(bank.disturbance_of(victim) < min_threshold);
    }

    #[test]
    fn refresh_window_clears_disturbance() {
        let model = fast_model();
        let mut bank = Bank::new(0, 1024);
        let trr = TrrConfig::disabled();
        let t = timings();
        for i in 0..50u64 {
            bank.access(
                10,
                Cycles::new(i * 100),
                &t,
                RowBufferPolicy::OpenPage,
                &model,
                &trr,
            );
        }
        assert!(bank.disturbance_of(11) > 0);
        // Jump past the refresh window.
        let res = bank.access(
            500,
            Cycles::new(t.refresh_window + 10_000),
            &t,
            RowBufferPolicy::OpenPage,
            &model,
            &trr,
        );
        assert!(res.window_rolled);
        assert_eq!(bank.disturbance_of(11), 0);
        assert_eq!(bank.activations_of(10), 0);
    }

    #[test]
    fn row_buffer_hit_does_not_activate() {
        let model = fast_model();
        let mut bank = Bank::new(0, 1024);
        let trr = TrrConfig::disabled();
        let t = timings();
        bank.access(
            7,
            Cycles::new(0),
            &t,
            RowBufferPolicy::OpenPage,
            &model,
            &trr,
        );
        let before = bank.activations_of(7);
        // Repeated access to the same open row: row-buffer hits, no new activations.
        for i in 1..100u64 {
            let res = bank.access(
                7,
                Cycles::new(i * 10),
                &t,
                RowBufferPolicy::OpenPage,
                &model,
                &trr,
            );
            assert_eq!(res.outcome, RowBufferOutcome::Hit);
        }
        assert_eq!(bank.activations_of(7), before);
    }

    #[test]
    fn trr_suppresses_flips_from_simple_double_sided_hammering() {
        let model = fast_model();
        let (aggr_low, victim) = find_weak_victim(&model, 0);
        let aggr_high = victim + 1;
        let t = timings();

        // Aggressive TRR: fires every 64 activations with a roomy sampler.
        let trr = TrrConfig::enabled(64, 16);
        let mut bank = Bank::new(0, 1024);
        let mut flips = 0;
        let mut now = Cycles::ZERO;
        for _ in 0..1500 {
            for row in [aggr_low, aggr_high] {
                let res = bank.access(row, now, &t, RowBufferPolicy::OpenPage, &model, &trr);
                flips += res.flips.iter().filter(|(r, _, _)| *r == victim).count();
                now += Cycles::new(300);
            }
        }
        assert_eq!(flips, 0, "TRR should protect the victim row");
    }

    #[test]
    fn weak_cell_fires_once_per_window() {
        let model = fast_model();
        let (aggr_low, victim) = find_weak_victim(&model, 0);
        let aggr_high = victim + 1;
        let t = timings();
        let trr = TrrConfig::disabled();
        let mut bank = Bank::new(0, 1024);
        let mut victim_flips = 0;
        let mut now = Cycles::ZERO;
        for _ in 0..1200 {
            for row in [aggr_low, aggr_high] {
                let res = bank.access(row, now, &t, RowBufferPolicy::OpenPage, &model, &trr);
                victim_flips += res.flips.iter().filter(|(r, _, _)| *r == victim).count();
                now += Cycles::new(100);
            }
        }
        let cells_in_victim = model.weak_cells(0, victim).len();
        assert!(
            victim_flips <= cells_in_victim,
            "each cell fires at most once per window"
        );
    }
}

//! Simulated DRAM substrate for the PThammer reproduction.
//!
//! The PThammer paper hammers physical DDR3 DIMMs; this crate provides the
//! software stand-in: DRAM geometry, physical-address-to-DRAM-location
//! mapping (both a simple sequential mapping and a DRAMA-style XOR bank
//! function), per-bank row buffers with open-page timing, refresh windows, a
//! deterministic weak-cell model that emits rowhammer bit flips when adjacent
//! rows are activated often enough within a refresh window, and an optional
//! Target Row Refresh (TRR) mitigation.
//!
//! The module never stores data: it reports [`FlipEvent`]s and the machine
//! layer applies them to its sparse physical memory, honouring each cell's
//! [`CellOrientation`](pthammer_types::CellOrientation).
//!
//! # Examples
//!
//! ```
//! use pthammer_dram::{DramConfig, DramModule, FlipModelProfile};
//! use pthammer_types::{Cycles, PhysAddr};
//!
//! let config = DramConfig::ddr3_8gib(FlipModelProfile::fast(), 1);
//! let mut dram = DramModule::new(config);
//! let outcome = dram.access(PhysAddr::new(0x1234_5678), Cycles::new(1000));
//! assert!(outcome.latency.as_u64() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod bank;
mod config;
mod flip_event;
mod geometry;
mod module;
mod row_buffer;
mod rows;
mod stats;
mod timing;
mod trr;
mod vulnerability;

pub use address::{AddressMapping, DramAddress, MappingKind};
pub use bank::{Bank, BankCheckpoint};
pub use config::DramConfig;
pub use flip_event::FlipEvent;
pub use geometry::DramGeometry;
pub use module::{DramAccessOutcome, DramModule};
pub use row_buffer::{RowBuffer, RowBufferOutcome, RowBufferPolicy};
pub use rows::RowStateSoA;
pub use stats::DramStats;
pub use timing::DramTimings;
pub use trr::TrrConfig;
pub use vulnerability::{FlipModel, FlipModelProfile, WeakCell};

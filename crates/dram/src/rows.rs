//! Dense structure-of-arrays row state for a bank.
//!
//! The hammer loop's hot path probes two to three rows per activation
//! (aggressor bookkeeping plus both neighbours), and the pattern
//! synthesizer's scoring loop replays thousands of activations per
//! candidate. Both want the per-row counters laid out as separate dense
//! `u32` arrays — activation counts, last-activation times and disturbance
//! each contiguous and indexed by row — instead of an array of per-row
//! structs, so a sweep over one counter kind streams one array.

use serde::{Deserialize, Serialize};

/// Per-row refresh-window bookkeeping in structure-of-arrays layout: three
/// dense `u32` arrays, each indexed by row number.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowStateSoA {
    /// Activation count per row within the current refresh window.
    activations: Vec<u32>,
    /// Window-relative cycle of each row's most recent activation
    /// (saturated to `u32`; meaningful only while the row's activation
    /// count is non-zero).
    last_activation: Vec<u32>,
    /// Accumulated disturbance (adjacent-row activations) per row within
    /// the window.
    disturbance: Vec<u32>,
}

impl RowStateSoA {
    /// Zeroed state for a bank of `rows` rows.
    pub fn new(rows: u32) -> Self {
        Self {
            activations: vec![0; rows as usize],
            last_activation: vec![0; rows as usize],
            disturbance: vec![0; rows as usize],
        }
    }

    /// Number of rows tracked.
    pub fn rows(&self) -> u32 {
        self.activations.len() as u32
    }

    /// Resets every counter (refresh-window rollover).
    pub fn clear(&mut self) {
        self.activations.fill(0);
        self.last_activation.fill(0);
        self.disturbance.fill(0);
    }

    /// Records an activation of `row` at window-relative cycle
    /// `window_cycle`.
    #[inline]
    pub fn record_activation(&mut self, row: u32, window_cycle: u64) {
        self.activations[row as usize] += 1;
        self.last_activation[row as usize] = window_cycle.min(u64::from(u32::MAX)) as u32;
    }

    /// Adds one unit of disturbance to `row` and returns the new total.
    #[inline]
    pub fn add_disturbance(&mut self, row: u32) -> u32 {
        let d = &mut self.disturbance[row as usize];
        *d += 1;
        *d
    }

    /// Clears `row`'s accumulated disturbance (targeted refresh).
    #[inline]
    pub fn clear_disturbance(&mut self, row: u32) {
        self.disturbance[row as usize] = 0;
    }

    /// Activation count of `row` this window (0 for out-of-range rows).
    pub fn activations_of(&self, row: u32) -> u32 {
        self.activations.get(row as usize).copied().unwrap_or(0)
    }

    /// Window-relative cycle of `row`'s most recent activation this window,
    /// or `None` while the row has not been activated (or is out of range).
    pub fn last_activation_of(&self, row: u32) -> Option<u32> {
        (self.activations_of(row) > 0).then(|| self.last_activation[row as usize])
    }

    /// Accumulated disturbance of `row` this window (0 for out-of-range
    /// rows).
    pub fn disturbance_of(&self, row: u32) -> u32 {
        self.disturbance.get(row as usize).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_start_zeroed_and_clear() {
        let mut s = RowStateSoA::new(8);
        assert_eq!(s.rows(), 8);
        assert_eq!(s.activations_of(3), 0);
        assert_eq!(s.disturbance_of(3), 0);
        assert_eq!(s.last_activation_of(3), None);
        s.record_activation(3, 700);
        assert_eq!(s.add_disturbance(4), 1);
        assert_eq!(s.add_disturbance(4), 2);
        assert_eq!(s.activations_of(3), 1);
        assert_eq!(s.last_activation_of(3), Some(700));
        s.clear();
        assert_eq!(s.activations_of(3), 0);
        assert_eq!(s.disturbance_of(4), 0);
        assert_eq!(s.last_activation_of(3), None);
    }

    #[test]
    fn out_of_range_probes_read_zero() {
        let s = RowStateSoA::new(4);
        assert_eq!(s.activations_of(99), 0);
        assert_eq!(s.disturbance_of(99), 0);
        assert_eq!(s.last_activation_of(99), None);
    }

    #[test]
    fn clear_disturbance_is_targeted() {
        let mut s = RowStateSoA::new(4);
        s.add_disturbance(1);
        s.add_disturbance(2);
        s.clear_disturbance(1);
        assert_eq!(s.disturbance_of(1), 0);
        assert_eq!(s.disturbance_of(2), 1);
    }

    #[test]
    fn last_activation_saturates_past_u32() {
        let mut s = RowStateSoA::new(2);
        s.record_activation(0, u64::from(u32::MAX) + 17);
        assert_eq!(s.last_activation_of(0), Some(u32::MAX));
    }
}

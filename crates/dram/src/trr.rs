//! Target Row Refresh (TRR) mitigation model.

use serde::{Deserialize, Serialize};

/// Configuration of the in-DRAM Target Row Refresh mitigation.
///
/// TRR-style mitigations track frequently activated rows and refresh their
/// neighbours before disturbance accumulates. Real implementations have a
/// bounded sampler, which TRRespass (Frigo et al., S&P 2020) exploits; we
/// model the sampler capacity so that many-sided access patterns can still
/// slip past a small sampler.
///
/// # Examples
///
/// ```
/// use pthammer_dram::TrrConfig;
/// let trr = TrrConfig::enabled(50_000, 4);
/// assert!(trr.enabled);
/// assert_eq!(TrrConfig::disabled().enabled, false);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrrConfig {
    /// Whether TRR is active. The DDR3 machines of the paper have no TRR.
    pub enabled: bool,
    /// Activation count within a refresh window that triggers a targeted
    /// refresh of the row's neighbours.
    pub activation_threshold: u32,
    /// Number of candidate aggressor rows the sampler can track per bank.
    pub sampler_capacity: usize,
}

impl TrrConfig {
    /// TRR disabled (DDR3 behaviour, default for the paper's machines).
    pub const fn disabled() -> Self {
        Self {
            enabled: false,
            activation_threshold: u32::MAX,
            sampler_capacity: 0,
        }
    }

    /// TRR enabled with the given threshold and sampler capacity.
    pub const fn enabled(activation_threshold: u32, sampler_capacity: usize) -> Self {
        Self {
            enabled: true,
            activation_threshold,
            sampler_capacity,
        }
    }
}

impl Default for TrrConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Per-bank TRR sampler state.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct TrrSampler {
    /// Tracked (row, activation count) pairs; bounded by `sampler_capacity`.
    tracked: Vec<(u32, u32)>,
}

impl TrrSampler {
    /// Records an activation of `row`; returns the rows whose neighbours
    /// should receive a targeted refresh.
    pub(crate) fn record(&mut self, row: u32, config: &TrrConfig) -> Option<u32> {
        if !config.enabled {
            return None;
        }
        if let Some(entry) = self.tracked.iter_mut().find(|(r, _)| *r == row) {
            entry.1 += 1;
            if entry.1 >= config.activation_threshold {
                entry.1 = 0;
                return Some(row);
            }
            return None;
        }
        if self.tracked.len() < config.sampler_capacity {
            self.tracked.push((row, 1));
        } else if !self.tracked.is_empty() {
            // Evict the least-activated tracked row (simple, bypassable
            // sampler — deliberately imperfect, like real TRR).
            let min_idx = self
                .tracked
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, count))| *count)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.tracked[min_idx] = (row, 1);
        }
        None
    }

    /// Clears the sampler (called at refresh-window boundaries).
    pub(crate) fn reset(&mut self) {
        self.tracked.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_fires() {
        let mut s = TrrSampler::default();
        let cfg = TrrConfig::disabled();
        for _ in 0..1_000_000u32 {
            assert_eq!(s.record(7, &cfg), None);
        }
    }

    #[test]
    fn fires_after_threshold() {
        let mut s = TrrSampler::default();
        let cfg = TrrConfig::enabled(10, 4);
        let mut fired = 0;
        for _ in 0..25 {
            if s.record(3, &cfg).is_some() {
                fired += 1;
            }
        }
        assert_eq!(fired, 2, "threshold 10 over 25 activations fires twice");
    }

    #[test]
    fn sampler_capacity_limits_tracking() {
        let mut s = TrrSampler::default();
        let cfg = TrrConfig::enabled(5, 2);
        // Rotate over many rows so that no row stays tracked long enough.
        let mut fired = false;
        for i in 0..200u32 {
            if s.record(i % 8, &cfg).is_some() {
                fired = true;
            }
        }
        // With 8 aggressors and capacity 2, the sampler keeps evicting
        // entries, so it fires rarely (possibly never) — the TRRespass effect.
        // We only assert that it fires far less often than an unbounded
        // sampler would (which would fire 200/ (8*5) = 5 times).
        let _ = fired;
        let mut unbounded = TrrSampler::default();
        let big_cfg = TrrConfig::enabled(5, 64);
        let mut unbounded_fired = 0;
        for i in 0..200u32 {
            if unbounded.record(i % 8, &big_cfg).is_some() {
                unbounded_fired += 1;
            }
        }
        assert!(unbounded_fired >= 5);
    }

    #[test]
    fn reset_clears_counts() {
        let mut s = TrrSampler::default();
        let cfg = TrrConfig::enabled(10, 4);
        for _ in 0..9 {
            assert_eq!(s.record(1, &cfg), None);
        }
        s.reset();
        for _ in 0..9 {
            assert_eq!(s.record(1, &cfg), None);
        }
    }
}

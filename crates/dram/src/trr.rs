//! Target Row Refresh (TRR) mitigation model.

use serde::{Deserialize, Serialize};

/// Configuration of the in-DRAM Target Row Refresh mitigation.
///
/// TRR-style mitigations track frequently activated rows and refresh their
/// neighbours before disturbance accumulates. Real implementations have a
/// bounded sampler, which TRRespass (Frigo et al., S&P 2020) exploits; we
/// model the sampler capacity so that many-sided access patterns can still
/// slip past a small sampler.
///
/// # Examples
///
/// ```
/// use pthammer_dram::TrrConfig;
/// let trr = TrrConfig::enabled(50_000, 4);
/// assert!(trr.enabled);
/// assert_eq!(TrrConfig::disabled().enabled, false);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrrConfig {
    /// Whether TRR is active. The DDR3 machines of the paper have no TRR.
    pub enabled: bool,
    /// Activation count within a refresh window that triggers a targeted
    /// refresh of the row's neighbours.
    pub activation_threshold: u32,
    /// Number of candidate aggressor rows the sampler can track per bank.
    pub sampler_capacity: usize,
}

impl TrrConfig {
    /// TRR disabled (DDR3 behaviour, default for the paper's machines).
    pub const fn disabled() -> Self {
        Self {
            enabled: false,
            activation_threshold: u32::MAX,
            sampler_capacity: 0,
        }
    }

    /// TRR enabled with the given threshold and sampler capacity.
    pub const fn enabled(activation_threshold: u32, sampler_capacity: usize) -> Self {
        Self {
            enabled: true,
            activation_threshold,
            sampler_capacity,
        }
    }
}

impl Default for TrrConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Per-bank TRR sampler state.
///
/// The sampler tracks the `sampler_capacity` most-recently-activated rows
/// (the vector is kept in recency order: front = coldest, back = hottest)
/// with a per-row activation counter. A row activated `activation_threshold`
/// times while tracked triggers a targeted refresh of its neighbours.
///
/// Recency-ordered eviction is what real in-DRAM mitigations approximate
/// with their bounded sampling hardware — and it is exactly the surface
/// TRRespass-style attacks exploit: keep **more rows simultaneously hot
/// than the sampler has slots** and every activation evicts the
/// least-recently-activated entry before its counter can reach the
/// threshold, so no targeted refresh ever fires.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct TrrSampler {
    /// Tracked (row, activation count) pairs in recency order; bounded by
    /// `sampler_capacity`.
    tracked: Vec<(u32, u32)>,
}

impl TrrSampler {
    /// The tracked `(row, activation count)` entries in recency order.
    pub(crate) fn tracked(&self) -> &[(u32, u32)] {
        &self.tracked
    }

    /// Records an activation of `row`; returns the rows whose neighbours
    /// should receive a targeted refresh.
    pub(crate) fn record(&mut self, row: u32, config: &TrrConfig) -> Option<u32> {
        if !config.enabled || config.sampler_capacity == 0 {
            return None;
        }
        if let Some(pos) = self.tracked.iter().position(|(r, _)| *r == row) {
            // Re-activation: bump the counter and move the row to the hot
            // end, firing (and restarting the count) at the threshold.
            let (_, count) = self.tracked.remove(pos);
            let count = count + 1;
            let fired = count >= config.activation_threshold;
            self.tracked.push((row, if fired { 0 } else { count }));
            return fired.then_some(row);
        }
        if self.tracked.len() >= config.sampler_capacity {
            // Evict the least-recently-activated row.
            self.tracked.remove(0);
        }
        // Degenerate threshold of 1: the first tracked activation already
        // meets it (only reachable with `activation_threshold <= 1`).
        let fired = 1 >= config.activation_threshold;
        self.tracked.push((row, if fired { 0 } else { 1 }));
        fired.then_some(row)
    }

    /// Clears the sampler (called at refresh-window boundaries).
    pub(crate) fn reset(&mut self) {
        self.tracked.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_fires() {
        let mut s = TrrSampler::default();
        let cfg = TrrConfig::disabled();
        for _ in 0..1_000_000u32 {
            assert_eq!(s.record(7, &cfg), None);
        }
    }

    #[test]
    fn fires_after_threshold() {
        let mut s = TrrSampler::default();
        let cfg = TrrConfig::enabled(10, 4);
        let mut fired = 0;
        for _ in 0..25 {
            if s.record(3, &cfg).is_some() {
                fired += 1;
            }
        }
        assert_eq!(fired, 2, "threshold 10 over 25 activations fires twice");
    }

    #[test]
    fn sampler_capacity_limits_tracking() {
        let mut s = TrrSampler::default();
        let cfg = TrrConfig::enabled(5, 2);
        // Rotate over many rows so that no row stays tracked long enough.
        let mut fired = false;
        for i in 0..200u32 {
            if s.record(i % 8, &cfg).is_some() {
                fired = true;
            }
        }
        // With 8 aggressors and capacity 2, the sampler keeps evicting
        // entries, so it fires rarely (possibly never) — the TRRespass effect.
        // We only assert that it fires far less often than an unbounded
        // sampler would (which would fire 200/ (8*5) = 5 times).
        let _ = fired;
        let mut unbounded = TrrSampler::default();
        let big_cfg = TrrConfig::enabled(5, 64);
        let mut unbounded_fired = 0;
        for i in 0..200u32 {
            if unbounded.record(i % 8, &big_cfg).is_some() {
                unbounded_fired += 1;
            }
        }
        assert!(unbounded_fired >= 5);
    }

    /// Capacity 0 with TRR nominally enabled: nothing can ever be tracked,
    /// so the sampler must neither fire nor grow state.
    #[test]
    fn zero_capacity_sampler_never_fires_or_tracks() {
        let mut s = TrrSampler::default();
        let cfg = TrrConfig::enabled(1, 0);
        for row in 0..10_000u32 {
            assert_eq!(s.record(row % 3, &cfg), None);
        }
        assert!(s.tracked.is_empty(), "capacity 0 must never allocate slots");
    }

    /// The refresh fires exactly when the tracked count *reaches* the
    /// threshold — at the N-th activation, not before, not after — and the
    /// count restarts from zero.
    #[test]
    fn fires_exactly_at_the_activation_threshold() {
        let mut s = TrrSampler::default();
        let cfg = TrrConfig::enabled(7, 2);
        for i in 1..=6u32 {
            assert_eq!(s.record(9, &cfg), None, "activation {i} is below threshold");
        }
        assert_eq!(s.record(9, &cfg), Some(9), "activation 7 fires");
        for i in 1..=6u32 {
            assert_eq!(
                s.record(9, &cfg),
                None,
                "post-fire activation {i} restarts the count"
            );
        }
        assert_eq!(s.record(9, &cfg), Some(9), "fires again at the threshold");
        // Threshold 1 is the degenerate edge: every activation fires.
        let mut s = TrrSampler::default();
        let cfg = TrrConfig::enabled(1, 2);
        assert_eq!(s.record(4, &cfg), Some(4));
        assert_eq!(s.record(4, &cfg), Some(4));
    }

    /// The TRRespass mechanism, proven deterministically: a rotating
    /// sequence of `k + 1` distinct rows over a capacity-`k` sampler evicts
    /// every row before its second activation, so a tracked aggressor that
    /// was one activation from firing is flushed by the rotation and the
    /// sampler never fires at all.
    #[test]
    fn rotating_many_sided_sequence_evicts_a_tracked_aggressor() {
        let k = 4usize;
        let cfg = TrrConfig::enabled(3, k);
        let mut s = TrrSampler::default();

        // Prime the aggressor to one activation below the threshold.
        assert_eq!(s.record(100, &cfg), None);
        assert_eq!(s.record(100, &cfg), None);
        assert!(s.tracked.iter().any(|&(r, c)| r == 100 && c == 2));

        // One full rotation of k other rows: the aggressor becomes the
        // least-recently-activated entry and is evicted with its count.
        for row in 0..k as u32 {
            assert_eq!(s.record(row, &cfg), None);
        }
        assert!(
            s.tracked.iter().all(|&(r, _)| r != 100),
            "the rotation must evict the primed aggressor: {:?}",
            s.tracked
        );

        // Its next activation is therefore counted from one again, and a
        // sustained (k+1)-row rotation keeps every count at one forever:
        // the sampler never fires on any of them.
        let mut s = TrrSampler::default();
        for i in 0..10_000u32 {
            assert_eq!(
                s.record(i % (k as u32 + 1), &cfg),
                None,
                "a {}-row rotation must starve a capacity-{k} sampler",
                k + 1
            );
        }
        assert!(s.tracked.iter().all(|&(_, c)| c <= 1));

        // Control: the same rotation over k rows fits the sampler and fires.
        let mut s = TrrSampler::default();
        let mut fired = 0;
        for i in 0..60u32 {
            if s.record(i % k as u32, &cfg).is_some() {
                fired += 1;
            }
        }
        assert_eq!(fired, 20, "k rows at threshold 3 fire every 3rd pass");
    }

    #[test]
    fn reset_clears_counts() {
        let mut s = TrrSampler::default();
        let cfg = TrrConfig::enabled(10, 4);
        for _ in 0..9 {
            assert_eq!(s.record(1, &cfg), None);
        }
        s.reset();
        for _ in 0..9 {
            assert_eq!(s.record(1, &cfg), None);
        }
    }
}

//! DRAM timing parameters expressed in CPU cycles.

use serde::{Deserialize, Serialize};

use pthammer_types::Cycles;

/// DRAM timing parameters, folded into CPU cycles at the machine's nominal
/// clock so the rest of the simulation runs on a single clock domain.
///
/// The individual latencies are calibrated so that a full PThammer
/// double-sided iteration (two implicit L1PTE loads from DRAM plus ~50 cached
/// eviction-set accesses) lands in the 600–1400 cycle range reported in
/// Figure 6 of the paper.
///
/// # Examples
///
/// ```
/// use pthammer_dram::DramTimings;
/// let t = DramTimings::ddr3_default();
/// assert!(t.row_conflict_latency() > t.row_hit_latency());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramTimings {
    /// Column access latency (CAS + bus transfer), charged on every access.
    pub cas: u32,
    /// Row-to-column delay, charged when a closed row must be activated.
    pub rcd: u32,
    /// Row precharge delay, charged when a different row is currently open.
    pub rp: u32,
    /// Length of a refresh window in cycles (64 ms at the nominal clock).
    pub refresh_window: u64,
}

impl DramTimings {
    /// Default DDR3 timings at a ~2.6 GHz CPU clock.
    pub const fn ddr3_default() -> Self {
        Self {
            cas: 110,
            rcd: 45,
            rp: 45,
            refresh_window: 166_400_000, // 64 ms * 2.6 GHz
        }
    }

    /// Slightly slower timings used for the Dell E6420 preset so that its
    /// per-iteration hammer cost lands in the 900–1400 cycle band of Fig. 6.
    pub const fn ddr3_slow() -> Self {
        Self {
            cas: 160,
            rcd: 70,
            rp: 70,
            refresh_window: 179_200_000, // 64 ms * 2.8 GHz
        }
    }

    /// Compressed timings for fast unit tests: short refresh window so
    /// rowhammer windows roll over quickly.
    pub const fn fast_test() -> Self {
        Self {
            cas: 100,
            rcd: 40,
            rp: 40,
            refresh_window: 2_000_000,
        }
    }

    /// Latency of an access that hits the open row buffer.
    pub const fn row_hit_latency(&self) -> Cycles {
        Cycles::new(self.cas as u64)
    }

    /// Latency of an access to a bank with no open row.
    pub const fn row_miss_latency(&self) -> Cycles {
        Cycles::new((self.cas + self.rcd) as u64)
    }

    /// Latency of an access that conflicts with a different open row.
    pub const fn row_conflict_latency(&self) -> Cycles {
        Cycles::new((self.cas + self.rcd + self.rp) as u64)
    }
}

impl Default for DramTimings {
    fn default() -> Self {
        Self::ddr3_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_are_ordered() {
        for t in [
            DramTimings::ddr3_default(),
            DramTimings::ddr3_slow(),
            DramTimings::fast_test(),
        ] {
            assert!(t.row_hit_latency() < t.row_miss_latency());
            assert!(t.row_miss_latency() < t.row_conflict_latency());
            assert!(t.refresh_window > 0);
        }
    }

    #[test]
    fn default_is_ddr3() {
        assert_eq!(DramTimings::default(), DramTimings::ddr3_default());
    }

    #[test]
    fn refresh_window_is_roughly_64ms() {
        let t = DramTimings::ddr3_default();
        let seconds = t.refresh_window as f64 / 2.6e9;
        assert!((seconds - 0.064).abs() < 1e-6);
    }
}

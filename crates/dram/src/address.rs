//! Mapping between physical addresses and DRAM locations.

use core::fmt;

use serde::{Deserialize, Serialize};

use pthammer_types::PhysAddr;

use crate::geometry::DramGeometry;

/// A fully decoded DRAM location.
///
/// `col` is the byte offset within the (bank, row) — i.e. within one 8 KiB
/// bank-row for the default geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramAddress {
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// Bank index within the rank.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u32,
    /// Byte offset within the bank-row.
    pub col: u32,
}

impl DramAddress {
    /// A flat identifier of the (channel, rank, bank) unit, used to index bank state.
    pub fn bank_unit(&self, geometry: &DramGeometry) -> u32 {
        (self.channel * geometry.ranks_per_channel + self.rank) * geometry.banks_per_rank
            + self.bank
    }

    /// Returns the same location but in a different row of the same bank.
    pub fn with_row(self, row: u32) -> Self {
        Self { row, ..self }
    }

    /// Returns true if `other` refers to the same (channel, rank, bank).
    pub fn same_bank(&self, other: &DramAddress) -> bool {
        self.channel == other.channel && self.rank == other.rank && self.bank == other.bank
    }
}

impl fmt::Display for DramAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{} rk{} bk{} row{} col{:#x}",
            self.channel, self.rank, self.bank, self.row, self.col
        )
    }
}

/// The kind of physical-address-to-DRAM mapping in use.
///
/// * [`MappingKind::Sequential`] lays fields out as
///   `| row | rank | bank | channel | column |` (low to high bits: column,
///   channel, bank, rank, row). Two addresses that differ by exactly two row
///   spans land in the same bank two rows apart — the property the paper's
///   256 MiB-stride pair selection exploits.
/// * [`MappingKind::XorBank`] additionally XORs the bank field with the low
///   row bits, mimicking the DRAMA-style bank hash of real memory
///   controllers. Used for ablation: it lowers the success rate of naive
///   stride-based pair selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum MappingKind {
    /// Plain bit-field decomposition.
    #[default]
    Sequential,
    /// Bank bits XOR-ed with the low row bits (DRAMA-style).
    XorBank,
}

/// Translates physical addresses to DRAM locations and back.
///
/// # Examples
///
/// ```
/// use pthammer_dram::{AddressMapping, DramGeometry, MappingKind};
/// use pthammer_types::PhysAddr;
///
/// let mapping = AddressMapping::new(DramGeometry::ddr3_8gib(), MappingKind::Sequential);
/// let pa = PhysAddr::new(0x1234_5678);
/// let loc = mapping.to_dram(pa);
/// assert_eq!(mapping.to_phys(loc), pa);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMapping {
    geometry: DramGeometry,
    kind: MappingKind,
}

impl AddressMapping {
    /// Creates a mapping for the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (non-power-of-two fields).
    pub fn new(geometry: DramGeometry, kind: MappingKind) -> Self {
        geometry
            .validate()
            .expect("address mapping requires a valid geometry");
        Self { geometry, kind }
    }

    /// The geometry this mapping was built for.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// The mapping kind.
    pub fn kind(&self) -> MappingKind {
        self.kind
    }

    /// Decodes a physical address into its DRAM location.
    ///
    /// Addresses beyond the module capacity wrap around (the high bits are
    /// masked off); the machine layer is responsible for never issuing such
    /// addresses.
    pub fn to_dram(&self, paddr: PhysAddr) -> DramAddress {
        let g = &self.geometry;
        let mut addr = paddr.as_u64();

        let col = (addr & mask(g.column_bits())) as u32;
        addr >>= g.column_bits();
        let channel = (addr & mask(g.channel_bits())) as u32;
        addr >>= g.channel_bits();
        let bank_field = (addr & mask(g.bank_bits())) as u32;
        addr >>= g.bank_bits();
        let rank = (addr & mask(g.rank_bits())) as u32;
        addr >>= g.rank_bits();
        let row = (addr & mask(g.row_bits())) as u32;

        let bank = match self.kind {
            MappingKind::Sequential => bank_field,
            MappingKind::XorBank => bank_field ^ (row & mask(g.bank_bits()) as u32),
        };

        DramAddress {
            channel,
            rank,
            bank,
            row,
            col,
        }
    }

    /// Encodes a DRAM location back into a physical address (inverse of
    /// [`AddressMapping::to_dram`]).
    pub fn to_phys(&self, addr: DramAddress) -> PhysAddr {
        let g = &self.geometry;
        let bank_field = match self.kind {
            MappingKind::Sequential => addr.bank,
            MappingKind::XorBank => addr.bank ^ (addr.row & mask(g.bank_bits()) as u32),
        };

        let mut raw = addr.row as u64 & mask(g.row_bits());
        raw = (raw << g.rank_bits()) | (addr.rank as u64 & mask(g.rank_bits()));
        raw = (raw << g.bank_bits()) | (bank_field as u64 & mask(g.bank_bits()));
        raw = (raw << g.channel_bits()) | (addr.channel as u64 & mask(g.channel_bits()));
        raw = (raw << g.column_bits()) | (addr.col as u64 & mask(g.column_bits()));
        PhysAddr::new(raw)
    }

    /// Returns the row index (`paddr >> row_shift`) — the granularity the
    /// paper calls a "row index" spanning [`DramGeometry::row_span_bytes`].
    pub fn row_index(&self, paddr: PhysAddr) -> u32 {
        self.to_dram(paddr).row
    }

    /// Returns true if the two physical addresses fall in the same
    /// (channel, rank, bank).
    pub fn same_bank(&self, a: PhysAddr, b: PhysAddr) -> bool {
        self.to_dram(a).same_bank(&self.to_dram(b))
    }
}

fn mask(bits: u32) -> u64 {
    if bits == 0 {
        0
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mappings() -> Vec<AddressMapping> {
        vec![
            AddressMapping::new(DramGeometry::ddr3_8gib(), MappingKind::Sequential),
            AddressMapping::new(DramGeometry::ddr3_8gib(), MappingKind::XorBank),
            AddressMapping::new(DramGeometry::tiny_32mib(), MappingKind::Sequential),
            AddressMapping::new(DramGeometry::small_1gib(), MappingKind::XorBank),
        ]
    }

    #[test]
    fn roundtrip_selected_addresses() {
        for m in mappings() {
            for raw in [0u64, 64, 4096, 0x1234_5678, 0x7fff_ffc0] {
                let raw = raw % m.geometry().capacity_bytes();
                let pa = PhysAddr::new(raw);
                assert_eq!(m.to_phys(m.to_dram(pa)), pa, "mapping {:?}", m.kind());
            }
        }
    }

    #[test]
    fn consecutive_row_spans_differ_only_in_row_sequential() {
        let m = AddressMapping::new(DramGeometry::ddr3_8gib(), MappingKind::Sequential);
        let span = m.geometry().row_span_bytes();
        let a = m.to_dram(PhysAddr::new(0x100));
        let b = m.to_dram(PhysAddr::new(0x100 + 2 * span));
        assert!(a.same_bank(&b));
        assert_eq!(b.row, a.row + 2);
        assert_eq!(a.col, b.col);
        assert_eq!(a.channel, b.channel);
    }

    #[test]
    fn xor_mapping_changes_bank_across_rows() {
        let m = AddressMapping::new(DramGeometry::ddr3_8gib(), MappingKind::XorBank);
        let span = m.geometry().row_span_bytes();
        let a = m.to_dram(PhysAddr::new(0x100));
        let b = m.to_dram(PhysAddr::new(0x100 + span));
        // Moving one row span flips the lowest row bit, which the XOR folds into the bank.
        assert_ne!(a.bank, b.bank);
        assert_eq!(b.row, a.row + 1);
    }

    #[test]
    fn bank_unit_is_dense_and_unique() {
        let g = DramGeometry::ddr3_8gib();
        let m = AddressMapping::new(g, MappingKind::Sequential);
        let mut seen = std::collections::HashSet::new();
        // Walk one byte in each bank unit of row 0.
        for chunk in 0..g.total_banks() {
            let pa = PhysAddr::new(chunk as u64 * g.row_bytes as u64);
            let unit = m.to_dram(pa).bank_unit(&g);
            assert!(unit < g.total_banks());
            seen.insert(unit);
        }
        assert_eq!(seen.len(), g.total_banks() as usize);
    }

    #[test]
    fn row_index_matches_row_span_division() {
        let m = AddressMapping::new(DramGeometry::ddr3_8gib(), MappingKind::Sequential);
        let span = m.geometry().row_span_bytes();
        for raw in [0, span - 1, span, 5 * span + 123] {
            assert_eq!(m.row_index(PhysAddr::new(raw)) as u64, raw / span);
        }
    }

    #[test]
    fn same_bank_is_reflexive() {
        for m in mappings() {
            let pa = PhysAddr::new(0x00be_efc0 % m.geometry().capacity_bytes());
            assert!(m.same_bank(pa, pa));
        }
    }

    #[test]
    #[should_panic(expected = "valid geometry")]
    fn invalid_geometry_panics() {
        let mut g = DramGeometry::ddr3_8gib();
        g.channels = 3;
        let _ = AddressMapping::new(g, MappingKind::Sequential);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_sequential(raw in 0u64..(8u64 << 30)) {
            let m = AddressMapping::new(DramGeometry::ddr3_8gib(), MappingKind::Sequential);
            let pa = PhysAddr::new(raw);
            prop_assert_eq!(m.to_phys(m.to_dram(pa)), pa);
        }

        #[test]
        fn prop_roundtrip_xor(raw in 0u64..(8u64 << 30)) {
            let m = AddressMapping::new(DramGeometry::ddr3_8gib(), MappingKind::XorBank);
            let pa = PhysAddr::new(raw);
            prop_assert_eq!(m.to_phys(m.to_dram(pa)), pa);
        }

        #[test]
        fn prop_fields_in_range(raw in 0u64..(8u64 << 30)) {
            let g = DramGeometry::ddr3_8gib();
            let m = AddressMapping::new(g, MappingKind::XorBank);
            let d = m.to_dram(PhysAddr::new(raw));
            prop_assert!(d.channel < g.channels);
            prop_assert!(d.rank < g.ranks_per_channel);
            prop_assert!(d.bank < g.banks_per_rank);
            prop_assert!(d.row < g.rows_per_bank);
            prop_assert!(d.col < g.row_bytes);
            prop_assert!(d.bank_unit(&g) < g.total_banks());
        }
    }
}

//! Top-level DRAM module configuration.

use serde::{Deserialize, Serialize};

use crate::{
    address::MappingKind, geometry::DramGeometry, row_buffer::RowBufferPolicy, timing::DramTimings,
    trr::TrrConfig, vulnerability::FlipModelProfile,
};

/// Complete configuration of a simulated DRAM module.
///
/// # Examples
///
/// ```
/// use pthammer_dram::{DramConfig, FlipModelProfile};
/// let cfg = DramConfig::ddr3_8gib(FlipModelProfile::paper(), 0xA5A5);
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Physical organisation.
    pub geometry: DramGeometry,
    /// Physical-address mapping kind.
    pub mapping: MappingKind,
    /// Timing parameters in CPU cycles.
    pub timings: DramTimings,
    /// Row-buffer management policy.
    pub row_buffer_policy: RowBufferPolicy,
    /// Weak-cell population profile.
    pub flip_profile: FlipModelProfile,
    /// Seed for the deterministic weak-cell map.
    pub flip_seed: u64,
    /// Target Row Refresh configuration.
    pub trr: TrrConfig,
}

impl DramConfig {
    /// The 8 GiB DDR3 module used by the Table I machines (no TRR).
    pub fn ddr3_8gib(flip_profile: FlipModelProfile, flip_seed: u64) -> Self {
        Self {
            geometry: DramGeometry::ddr3_8gib(),
            mapping: MappingKind::Sequential,
            timings: DramTimings::ddr3_default(),
            row_buffer_policy: RowBufferPolicy::OpenPage,
            flip_profile,
            flip_seed,
            trr: TrrConfig::disabled(),
        }
    }

    /// A small, fast configuration for unit tests.
    pub fn test_small(flip_profile: FlipModelProfile, flip_seed: u64) -> Self {
        Self {
            geometry: DramGeometry::tiny_32mib(),
            mapping: MappingKind::Sequential,
            timings: DramTimings::fast_test(),
            row_buffer_policy: RowBufferPolicy::OpenPage,
            flip_profile,
            flip_seed,
            trr: TrrConfig::disabled(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid component.
    pub fn validate(&self) -> Result<(), String> {
        self.geometry.validate()?;
        self.flip_profile.validate()?;
        if self.timings.refresh_window == 0 {
            return Err("refresh_window must be non-zero".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(DramConfig::ddr3_8gib(FlipModelProfile::paper(), 1)
            .validate()
            .is_ok());
        assert!(DramConfig::test_small(FlipModelProfile::ci(), 1)
            .validate()
            .is_ok());
    }

    #[test]
    fn validation_propagates_geometry_errors() {
        let mut cfg = DramConfig::ddr3_8gib(FlipModelProfile::paper(), 1);
        cfg.geometry.channels = 3;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_propagates_profile_errors() {
        let mut cfg = DramConfig::ddr3_8gib(FlipModelProfile::paper(), 1);
        cfg.flip_profile.weak_row_density = 2.0;
        assert!(cfg.validate().is_err());
    }
}

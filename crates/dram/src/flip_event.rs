//! Bit-flip events emitted by the DRAM model.

use core::fmt;

use serde::{Deserialize, Serialize};

use pthammer_types::{CellOrientation, FlipDirection, PhysAddr};

use crate::address::DramAddress;

/// A rowhammer-induced bit flip observed by the DRAM model.
///
/// The DRAM model does not store data, so a flip event only identifies *where*
/// the disturbance landed and in which direction the bit can move; the machine
/// layer applies the event to its physical-memory contents (a flip whose
/// direction does not match the currently stored bit is a no-op, exactly as
/// in real hardware where a discharged cell cannot discharge further).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlipEvent {
    /// Physical address of the byte containing the flipped cell.
    pub paddr: PhysAddr,
    /// DRAM location of the victim cell.
    pub location: DramAddress,
    /// Bit position within the byte (0–7).
    pub bit: u8,
    /// Cell orientation (determines the flip direction).
    pub orientation: CellOrientation,
    /// Disturbance count (adjacent activations within the refresh window)
    /// observed when the flip fired.
    pub disturbance: u32,
}

impl FlipEvent {
    /// The direction in which this flip changes the stored bit.
    pub fn direction(&self) -> FlipDirection {
        self.orientation.flip_direction()
    }
}

impl fmt::Display for FlipEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flip {} bit {} at {} ({}) after {} activations",
            self.direction(),
            self.bit,
            self.paddr,
            self.location,
            self.disturbance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FlipEvent {
        FlipEvent {
            paddr: PhysAddr::new(0x1000),
            location: DramAddress {
                channel: 0,
                rank: 1,
                bank: 2,
                row: 3,
                col: 4,
            },
            bit: 5,
            orientation: CellOrientation::TrueCell,
            disturbance: 1234,
        }
    }

    #[test]
    fn direction_follows_orientation() {
        let mut e = sample();
        assert_eq!(e.direction(), FlipDirection::OneToZero);
        e.orientation = CellOrientation::AntiCell;
        assert_eq!(e.direction(), FlipDirection::ZeroToOne);
    }

    #[test]
    fn display_mentions_location() {
        let s = sample().to_string();
        assert!(s.contains("bit 5"));
        assert!(s.contains("row3"));
        assert!(s.contains("1234"));
    }
}

//! The complete DRAM module: banks, mapping and statistics.

use serde::{Deserialize, Serialize};

use pthammer_types::{Cycles, PhysAddr};

use crate::{
    address::{AddressMapping, DramAddress},
    bank::Bank,
    config::DramConfig,
    flip_event::FlipEvent,
    row_buffer::RowBufferOutcome,
    stats::DramStats,
    vulnerability::FlipModel,
};

/// Outcome of a single DRAM access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramAccessOutcome {
    /// Decoded DRAM location that was accessed.
    pub location: DramAddress,
    /// Row-buffer behaviour of the access.
    pub row_buffer: RowBufferOutcome,
    /// Modelled latency of the access.
    pub latency: Cycles,
    /// Bit flips induced (in *neighbouring* rows) by this access.
    pub flips: Vec<FlipEvent>,
}

/// A simulated DRAM module.
///
/// # Examples
///
/// ```
/// use pthammer_dram::{DramConfig, DramModule, FlipModelProfile, RowBufferOutcome};
/// use pthammer_types::{Cycles, PhysAddr};
///
/// let mut dram = DramModule::new(DramConfig::test_small(FlipModelProfile::ci(), 7));
/// let first = dram.access(PhysAddr::new(0x2000), Cycles::new(0));
/// assert_eq!(first.row_buffer, RowBufferOutcome::Miss);
/// let second = dram.access(PhysAddr::new(0x2000), Cycles::new(500));
/// assert_eq!(second.row_buffer, RowBufferOutcome::Hit);
/// assert!(second.latency < first.latency);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DramModule {
    config: DramConfig,
    mapping: AddressMapping,
    flip_model: FlipModel,
    banks: Vec<Bank>,
    stats: DramStats,
}

impl DramModule {
    /// Creates a DRAM module from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: DramConfig) -> Self {
        config.validate().expect("invalid DRAM configuration");
        let mapping = AddressMapping::new(config.geometry, config.mapping);
        let flip_model = FlipModel::new(
            config.flip_profile,
            config.flip_seed,
            config.geometry.row_bytes,
        );
        let banks = (0..config.geometry.total_banks())
            .map(|unit| Bank::new(unit, config.geometry.rows_per_bank))
            .collect();
        Self {
            config,
            mapping,
            flip_model,
            banks,
            stats: DramStats::default(),
        }
    }

    /// The configuration this module was built from.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// The physical-address mapping in use.
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// The weak-cell model in use (exposed for evaluation oracles and tests;
    /// the simulated attacker never consults it).
    pub fn flip_model(&self) -> &FlipModel {
        &self.flip_model
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Performs an access to the cache line containing `paddr` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `paddr` is beyond the module capacity.
    #[inline]
    pub fn access(&mut self, paddr: PhysAddr, now: Cycles) -> DramAccessOutcome {
        assert!(
            paddr.as_u64() < self.config.geometry.capacity_bytes(),
            "physical address {paddr} beyond DRAM capacity"
        );
        let location = self.mapping.to_dram(paddr);
        let unit = location.bank_unit(&self.config.geometry) as usize;
        let result = self.banks[unit].access(
            location.row,
            now,
            &self.config.timings,
            self.config.row_buffer_policy,
            &self.flip_model,
            &self.config.trr,
        );

        let latency = match result.outcome {
            RowBufferOutcome::Hit => self.config.timings.row_hit_latency(),
            RowBufferOutcome::Miss => self.config.timings.row_miss_latency(),
            RowBufferOutcome::Conflict => self.config.timings.row_conflict_latency(),
        };

        self.stats.accesses += 1;
        match result.outcome {
            RowBufferOutcome::Hit => self.stats.row_hits += 1,
            RowBufferOutcome::Miss => self.stats.row_misses += 1,
            RowBufferOutcome::Conflict => self.stats.row_conflicts += 1,
        }
        if result.outcome.activated() {
            self.stats.activations += 1;
        }
        if result.window_rolled {
            self.stats.refresh_windows += 1;
        }
        if result.trr_fired {
            self.stats.trr_refreshes += 1;
        }

        let flips: Vec<FlipEvent> = result
            .flips
            .into_iter()
            .map(|(victim_row, cell, disturbance)| {
                let victim_location = DramAddress {
                    row: victim_row,
                    col: cell.byte_in_row,
                    ..location
                };
                FlipEvent {
                    paddr: self.mapping.to_phys(victim_location),
                    location: victim_location,
                    bit: cell.bit,
                    orientation: cell.orientation,
                    disturbance,
                }
            })
            .collect();
        self.stats.flips += flips.len() as u64;

        DramAccessOutcome {
            location,
            row_buffer: result.outcome,
            latency,
            flips,
        }
    }

    /// Decodes a physical address without performing an access.
    pub fn locate(&self, paddr: PhysAddr) -> DramAddress {
        self.mapping.to_dram(paddr)
    }

    /// Returns true when the two addresses map to the same (channel, rank, bank).
    pub fn same_bank(&self, a: PhysAddr, b: PhysAddr) -> bool {
        self.mapping.same_bank(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vulnerability::FlipModelProfile;

    fn module() -> DramModule {
        DramModule::new(DramConfig::test_small(FlipModelProfile::ci(), 3))
    }

    #[test]
    fn hit_miss_conflict_latencies() {
        let mut dram = module();
        let row_span = dram.config().geometry.row_span_bytes();
        let a = PhysAddr::new(0);
        let conflicting = PhysAddr::new(4 * row_span); // same bank, different row

        let miss = dram.access(a, Cycles::new(0));
        assert_eq!(miss.row_buffer, RowBufferOutcome::Miss);
        let hit = dram.access(a, Cycles::new(1000));
        assert_eq!(hit.row_buffer, RowBufferOutcome::Hit);
        let conflict = dram.access(conflicting, Cycles::new(2000));
        assert_eq!(conflict.row_buffer, RowBufferOutcome::Conflict);
        assert!(hit.latency < miss.latency);
        assert!(miss.latency < conflict.latency);

        let stats = dram.stats();
        assert_eq!(stats.accesses, 3);
        assert_eq!(stats.row_hits, 1);
        assert_eq!(stats.row_misses, 1);
        assert_eq!(stats.row_conflicts, 1);
        assert_eq!(stats.activations, 2);
    }

    #[test]
    fn different_banks_do_not_conflict() {
        let mut dram = module();
        let row_bytes = dram.config().geometry.row_bytes as u64;
        let a = PhysAddr::new(0);
        let b = PhysAddr::new(row_bytes); // next bank, same row index
        assert!(!dram.same_bank(a, b));
        dram.access(a, Cycles::new(0));
        let out = dram.access(b, Cycles::new(100));
        assert_eq!(out.row_buffer, RowBufferOutcome::Miss);
    }

    #[test]
    fn flip_events_land_in_adjacent_row_and_roundtrip_addresses() {
        let mut dram = module();
        let geometry = dram.config().geometry;
        let row_span = geometry.row_span_bytes();

        // Find a weak victim row in bank unit of address 0's bank by scanning.
        let model = dram.flip_model().clone();
        let base_loc = dram.locate(PhysAddr::new(0));
        let victim = (1..geometry.rows_per_bank - 1)
            .find(|&r| model.row_is_weak(base_loc.bank_unit(&geometry), r))
            .expect("ci profile has weak rows");

        // Hammer the two neighbours of the victim row (double-sided) using
        // physical addresses reconstructed through the mapping.
        let mapping = *dram.mapping();
        let low = mapping.to_phys(DramAddress {
            row: victim - 1,
            ..base_loc
        });
        let high = mapping.to_phys(DramAddress {
            row: victim + 1,
            ..base_loc
        });
        assert_eq!(high - low, 2 * row_span);

        let mut all_flips = Vec::new();
        let mut now = Cycles::ZERO;
        for _ in 0..1000 {
            for addr in [low, high] {
                let out = dram.access(addr, now);
                all_flips.extend(out.flips);
                now += Cycles::new(300);
            }
        }
        assert!(!all_flips.is_empty(), "expected flips with the ci profile");
        for flip in &all_flips {
            // Flips are in rows adjacent to an aggressor; at least one must be
            // in the victim row itself.
            assert!(flip.location.row.abs_diff(victim) <= 2);
            // The flip's physical address decodes back to its DRAM location.
            assert_eq!(dram.locate(flip.paddr), flip.location);
        }
        assert!(all_flips.iter().any(|f| f.location.row == victim));
        assert_eq!(dram.stats().flips, all_flips.len() as u64);
    }

    #[test]
    #[should_panic(expected = "beyond DRAM capacity")]
    fn out_of_range_access_panics() {
        let mut dram = module();
        let cap = dram.config().geometry.capacity_bytes();
        dram.access(PhysAddr::new(cap), Cycles::new(0));
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut dram = module();
        dram.access(PhysAddr::new(0), Cycles::new(0));
        assert_eq!(dram.stats().accesses, 1);
        dram.reset_stats();
        assert_eq!(dram.stats().accesses, 0);
    }

    #[test]
    fn full_size_module_constructs() {
        let dram = DramModule::new(DramConfig::ddr3_8gib(FlipModelProfile::paper(), 1));
        assert_eq!(dram.config().geometry.capacity_bytes(), 8 << 30);
        assert_eq!(dram.config().geometry.total_banks() as usize, 32usize);
    }
}

//! DRAM geometry: channels, ranks, banks, rows, and row size.

use serde::{Deserialize, Serialize};

/// The physical organisation of the simulated DRAM.
///
/// All dimensions must be powers of two so that physical addresses decompose
/// into bit fields. The default 8 GiB DDR3 geometry mirrors the test machines
/// of Table I: two channels, two ranks per channel, eight banks per rank,
/// 32 768 rows per bank and 8 KiB per bank-row. One *row index* therefore
/// spans `8 KiB × 8 banks × 2 ranks × 2 channels = 256 KiB` of contiguous
/// physical address space, matching the `RowSize = 256 KiB` the paper uses
/// when selecting double-sided hammer pairs.
///
/// # Examples
///
/// ```
/// use pthammer_dram::DramGeometry;
/// let g = DramGeometry::ddr3_8gib();
/// assert_eq!(g.capacity_bytes(), 8 * 1024 * 1024 * 1024);
/// assert_eq!(g.row_span_bytes(), 256 * 1024);
/// assert_eq!(g.total_banks(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramGeometry {
    /// Number of memory channels.
    pub channels: u32,
    /// Number of ranks per channel.
    pub ranks_per_channel: u32,
    /// Number of banks per rank.
    pub banks_per_rank: u32,
    /// Number of rows per bank.
    pub rows_per_bank: u32,
    /// Bytes stored in one row of one bank.
    pub row_bytes: u32,
}

impl DramGeometry {
    /// The 8 GiB DDR3 geometry used by the Table I machines.
    pub const fn ddr3_8gib() -> Self {
        Self {
            channels: 2,
            ranks_per_channel: 2,
            banks_per_rank: 8,
            rows_per_bank: 32_768,
            row_bytes: 8_192,
        }
    }

    /// A deliberately tiny geometry (32 MiB) for fast unit tests.
    pub const fn tiny_32mib() -> Self {
        Self {
            channels: 1,
            ranks_per_channel: 1,
            banks_per_rank: 4,
            rows_per_bank: 1_024,
            row_bytes: 8_192,
        }
    }

    /// A small 1 GiB geometry useful for integration tests that still want a
    /// realistic bank count.
    pub const fn small_1gib() -> Self {
        Self {
            channels: 2,
            ranks_per_channel: 1,
            banks_per_rank: 8,
            rows_per_bank: 8_192,
            row_bytes: 8_192,
        }
    }

    /// Validates that every dimension is a non-zero power of two.
    ///
    /// # Errors
    ///
    /// Returns a description of the first offending field.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("channels", self.channels),
            ("ranks_per_channel", self.ranks_per_channel),
            ("banks_per_rank", self.banks_per_rank),
            ("rows_per_bank", self.rows_per_bank),
            ("row_bytes", self.row_bytes),
        ];
        for (name, value) in fields {
            if value == 0 || !value.is_power_of_two() {
                return Err(format!(
                    "DRAM geometry field `{name}` must be a non-zero power of two, got {value}"
                ));
            }
        }
        Ok(())
    }

    /// Total number of (channel, rank, bank) units.
    pub const fn total_banks(&self) -> u32 {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }

    /// Total capacity in bytes.
    pub const fn capacity_bytes(&self) -> u64 {
        self.total_banks() as u64 * self.rows_per_bank as u64 * self.row_bytes as u64
    }

    /// Bytes of contiguous physical address space covered by one row index
    /// across all banks (`row_bytes × total_banks`).
    pub const fn row_span_bytes(&self) -> u64 {
        self.row_bytes as u64 * self.total_banks() as u64
    }

    /// Number of 4 KiB frames in the module.
    pub const fn total_frames(&self) -> u64 {
        self.capacity_bytes() / 4096
    }

    /// log2 of the per-bank row size in bytes (the column field width).
    pub fn column_bits(&self) -> u32 {
        self.row_bytes.trailing_zeros()
    }

    /// log2 of the channel count.
    pub fn channel_bits(&self) -> u32 {
        self.channels.trailing_zeros()
    }

    /// log2 of the banks-per-rank count.
    pub fn bank_bits(&self) -> u32 {
        self.banks_per_rank.trailing_zeros()
    }

    /// log2 of the ranks-per-channel count.
    pub fn rank_bits(&self) -> u32 {
        self.ranks_per_channel.trailing_zeros()
    }

    /// log2 of the rows-per-bank count.
    pub fn row_bits(&self) -> u32 {
        self.rows_per_bank.trailing_zeros()
    }

    /// Number of address bits consumed below the row field
    /// (column + channel + bank + rank).
    pub fn row_shift(&self) -> u32 {
        self.column_bits() + self.channel_bits() + self.bank_bits() + self.rank_bits()
    }
}

impl Default for DramGeometry {
    fn default() -> Self {
        Self::ddr3_8gib()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_8gib_capacity() {
        let g = DramGeometry::ddr3_8gib();
        assert!(g.validate().is_ok());
        assert_eq!(g.capacity_bytes(), 8 << 30);
        assert_eq!(g.total_banks(), 32);
        assert_eq!(g.row_span_bytes(), 256 * 1024);
        assert_eq!(g.total_frames(), (8 << 30) / 4096);
    }

    #[test]
    fn tiny_geometry_is_valid() {
        let g = DramGeometry::tiny_32mib();
        assert!(g.validate().is_ok());
        assert_eq!(g.capacity_bytes(), 32 << 20);
    }

    #[test]
    fn small_geometry_is_valid() {
        let g = DramGeometry::small_1gib();
        assert!(g.validate().is_ok());
        assert_eq!(g.capacity_bytes(), 1 << 30);
    }

    #[test]
    fn bit_field_widths() {
        let g = DramGeometry::ddr3_8gib();
        assert_eq!(g.column_bits(), 13);
        assert_eq!(g.channel_bits(), 1);
        assert_eq!(g.bank_bits(), 3);
        assert_eq!(g.rank_bits(), 1);
        assert_eq!(g.row_bits(), 15);
        assert_eq!(g.row_shift(), 18);
        // Row span granularity equals 2^row_shift.
        assert_eq!(g.row_span_bytes(), 1 << g.row_shift());
    }

    #[test]
    fn validate_rejects_non_power_of_two() {
        let mut g = DramGeometry::ddr3_8gib();
        g.banks_per_rank = 6;
        let err = g.validate().unwrap_err();
        assert!(err.contains("banks_per_rank"));
        g.banks_per_rank = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn default_is_8gib() {
        assert_eq!(DramGeometry::default(), DramGeometry::ddr3_8gib());
    }
}

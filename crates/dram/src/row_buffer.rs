//! Per-bank row-buffer state and close policies.

use serde::{Deserialize, Serialize};

use pthammer_types::Cycles;

/// Outcome of an access with respect to the bank's row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowBufferOutcome {
    /// The requested row was already open.
    Hit,
    /// No row was open; the requested row had to be activated.
    Miss,
    /// A different row was open; it had to be precharged first (row-buffer
    /// conflict). This is the slow case the attack's same-bank detection
    /// measures (Section IV-D of the paper).
    Conflict,
}

impl RowBufferOutcome {
    /// True when the access required activating the row (miss or conflict).
    pub const fn activated(self) -> bool {
        !matches!(self, RowBufferOutcome::Hit)
    }
}

/// Row-buffer management policy of the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RowBufferPolicy {
    /// Keep the row open until a conflicting access closes it (open-page).
    #[default]
    OpenPage,
    /// Close the row if the bank has been idle for the given number of
    /// cycles. This models the "sophisticated" preemptive-close behaviour
    /// that one-location hammering (Gruss et al.) exploits.
    TimerClose {
        /// Idle cycles after which the open row is preemptively closed.
        idle_close_cycles: u64,
    },
}

/// Row-buffer state of a single bank.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowBuffer {
    open_row: Option<u32>,
    last_access: Cycles,
}

impl RowBuffer {
    /// Creates an empty (closed) row buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<u32> {
        self.open_row
    }

    /// Records an access to `row` at time `now` and returns the row-buffer outcome.
    pub fn access(&mut self, row: u32, now: Cycles, policy: RowBufferPolicy) -> RowBufferOutcome {
        if let RowBufferPolicy::TimerClose { idle_close_cycles } = policy {
            if self.open_row.is_some()
                && now.saturating_sub(self.last_access).as_u64() > idle_close_cycles
            {
                self.open_row = None;
            }
        }
        let outcome = match self.open_row {
            Some(open) if open == row => RowBufferOutcome::Hit,
            Some(_) => RowBufferOutcome::Conflict,
            None => RowBufferOutcome::Miss,
        };
        self.open_row = Some(row);
        self.last_access = now;
        outcome
    }

    /// Forces the row buffer closed (e.g. on refresh).
    pub fn close(&mut self) {
        self.open_row = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_conflict_sequence() {
        let mut rb = RowBuffer::new();
        let p = RowBufferPolicy::OpenPage;
        assert_eq!(rb.access(5, Cycles::new(0), p), RowBufferOutcome::Miss);
        assert_eq!(rb.access(5, Cycles::new(10), p), RowBufferOutcome::Hit);
        assert_eq!(rb.access(9, Cycles::new(20), p), RowBufferOutcome::Conflict);
        assert_eq!(rb.open_row(), Some(9));
    }

    #[test]
    fn close_resets_state() {
        let mut rb = RowBuffer::new();
        rb.access(1, Cycles::new(0), RowBufferPolicy::OpenPage);
        rb.close();
        assert_eq!(rb.open_row(), None);
        assert_eq!(
            rb.access(1, Cycles::new(5), RowBufferPolicy::OpenPage),
            RowBufferOutcome::Miss
        );
    }

    #[test]
    fn timer_close_policy_preemptively_closes() {
        let mut rb = RowBuffer::new();
        let p = RowBufferPolicy::TimerClose {
            idle_close_cycles: 100,
        };
        assert_eq!(rb.access(3, Cycles::new(0), p), RowBufferOutcome::Miss);
        // Within the idle window: still open.
        assert_eq!(rb.access(3, Cycles::new(50), p), RowBufferOutcome::Hit);
        // After a long idle period the controller closed the row: a re-access
        // is a miss (fresh activation), which is what one-location hammering
        // relies on.
        assert_eq!(rb.access(3, Cycles::new(500), p), RowBufferOutcome::Miss);
    }

    #[test]
    fn activated_predicate() {
        assert!(!RowBufferOutcome::Hit.activated());
        assert!(RowBufferOutcome::Miss.activated());
        assert!(RowBufferOutcome::Conflict.activated());
    }
}

//! Campaign results: per-cell rows, per-defense summaries, canonical JSON.

use pthammer::{HammerMode, VictimChoice};
use pthammer_kernel::DefenseKind;
use pthammer_patterns::PatternChoice;
use serde::ser::JsonWriter;
use serde::{Deserialize, Serialize};

use crate::matrix::ScenarioMatrix;

/// Version stamp of the report schema; bump when the JSON layout changes so
/// golden snapshots fail loudly instead of mysteriously.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

/// Outcome of one campaign cell (one attack run).
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct CellReport {
    /// Machine name (coordinate).
    pub machine: String,
    /// Defense (coordinate), typed; serializes as its display name.
    pub defense: DefenseKind,
    /// Weak-cell profile name (coordinate).
    pub profile: String,
    /// Hammer strategy the cell ran (coordinate). Serialized only for
    /// non-default modes, so pre-axis snapshots stay byte-identical.
    pub hammer_mode: HammerMode,
    /// Many-sided pattern source the cell ran, if any (coordinate).
    /// Serialized only when present (pre-axis snapshots stay
    /// byte-identical).
    pub pattern: Option<PatternChoice>,
    /// Victim the cell's `Exploit` phase drove, if explicitly swept
    /// (coordinate). Serialized only when present (pre-axis snapshots stay
    /// byte-identical); presence also gates the `exploit_succeeded` /
    /// `time_to_exploit` keys below.
    pub victim: Option<VictimChoice>,
    /// Repetition index (coordinate).
    pub repetition: u32,
    /// The seed derived from the coordinates (for reproducing this cell in
    /// isolation).
    pub cell_seed: u64,
    /// Whether kernel privilege escalation succeeded.
    pub escalated: bool,
    /// Hammer attempts performed.
    pub attempts: usize,
    /// Bit flips observed (including unexploitable ones).
    pub flips_observed: usize,
    /// Exploitable flips (captured an L1PT or cred page).
    pub exploitable_flips: usize,
    /// Targeted refreshes the machine's TRR mitigation issued during the
    /// cell (0 on TRR-free machines). Serialized only when non-zero, so
    /// pre-TRR snapshots stay byte-identical.
    pub trr_refreshes: u64,
    /// Fraction of hammer iterations whose L1PTE loads reached DRAM.
    pub implicit_dram_rate: f64,
    /// Simulated seconds until the first flip, if one occurred.
    pub seconds_to_first_flip: Option<f64>,
    /// Simulated seconds until escalation, if it happened.
    pub seconds_to_escalation: Option<f64>,
    /// Whether the cell's victim attack succeeded. Populated (and
    /// serialized) only for explicit-victim cells.
    pub exploit_succeeded: Option<bool>,
    /// Double-sided hammer iterations performed before the victim attack
    /// succeeded. Populated (and serialized) only for explicit-victim cells;
    /// `null` there when the exploit never succeeded.
    pub time_to_exploit: Option<u64>,
    /// Escalation route (the victim outcome's route label), if the exploit
    /// escalated or recovered key material.
    pub route: Option<String>,
    /// Error description if the attack aborted instead of completing.
    pub error: Option<String>,
}

// Hand-written: `defense` serializes as its display name; `hammer_mode` is
// emitted only when it is not the paper default, `pattern` and `victim`
// (with its `exploit_succeeded` / `time_to_exploit` outcome keys) only when
// present, and `trr_refreshes` only when non-zero — the golden snapshot
// predates those axes and must stay byte-identical.
impl Serialize for CellReport {
    fn serialize(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("machine");
        self.machine.serialize(w);
        w.key("defense");
        self.defense.serialize(w);
        w.key("profile");
        self.profile.serialize(w);
        if !self.hammer_mode.is_default() {
            w.key("hammer_mode");
            w.string(self.hammer_mode.name());
        }
        if let Some(pattern) = self.pattern {
            w.key("pattern");
            w.string(pattern.name());
        }
        if let Some(victim) = self.victim {
            w.key("victim");
            w.string(victim.name());
        }
        w.key("repetition");
        self.repetition.serialize(w);
        w.key("cell_seed");
        self.cell_seed.serialize(w);
        w.key("escalated");
        self.escalated.serialize(w);
        w.key("attempts");
        self.attempts.serialize(w);
        w.key("flips_observed");
        self.flips_observed.serialize(w);
        w.key("exploitable_flips");
        self.exploitable_flips.serialize(w);
        if self.trr_refreshes != 0 {
            w.key("trr_refreshes");
            self.trr_refreshes.serialize(w);
        }
        w.key("implicit_dram_rate");
        self.implicit_dram_rate.serialize(w);
        w.key("seconds_to_first_flip");
        self.seconds_to_first_flip.serialize(w);
        w.key("seconds_to_escalation");
        self.seconds_to_escalation.serialize(w);
        if self.victim.is_some() {
            w.key("exploit_succeeded");
            self.exploit_succeeded.serialize(w);
            w.key("time_to_exploit");
            self.time_to_exploit.serialize(w);
        }
        w.key("route");
        self.route.serialize(w);
        w.key("error");
        self.error.serialize(w);
        w.end_object();
    }
}

/// Aggregates over all cells sharing one (defense, profile, hammer-mode)
/// combination.
///
/// Summaries are split by weak-cell profile so control groups (e.g. the
/// `invulnerable` profile) can never dilute a defense's headline escalation
/// rate, and by hammer mode so strategy sweeps stay comparable.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct DefenseSummary {
    /// Defense, typed; serializes as its display name.
    pub defense: DefenseKind,
    /// Weak-cell profile name the cells ran with.
    pub profile: String,
    /// Hammer strategy the cells ran. Serialized only for non-default
    /// modes (golden-snapshot compatibility).
    pub hammer_mode: HammerMode,
    /// Pattern source the cells ran, if any. Serialized only when present
    /// (golden-snapshot compatibility).
    pub pattern: Option<PatternChoice>,
    /// Victim the cells drove, if explicitly swept. Serialized only when
    /// present (golden-snapshot compatibility); presence also gates the
    /// `exploit_successes` / `mean_time_to_exploit` keys below.
    pub victim: Option<VictimChoice>,
    /// Number of cells aggregated (including errored ones).
    pub cells: usize,
    /// Cells that aborted with an error; excluded from every rate and mean
    /// below so environmental failures never masquerade as defense wins.
    pub errored_cells: usize,
    /// Completed cells where escalation succeeded.
    pub escalations: usize,
    /// Escalation rate over the defense's completed cells.
    pub escalation_rate: f64,
    /// Completed cells that observed at least one flip.
    pub flip_cells: usize,
    /// Mean observed flips per completed cell.
    pub mean_flips: f64,
    /// Mean exploitable flips per completed cell.
    pub mean_exploitable_flips: f64,
    /// Mean implicit DRAM rate over completed cells.
    pub mean_implicit_dram_rate: f64,
    /// Mean simulated seconds to first flip over cells that flipped.
    pub mean_seconds_to_first_flip: Option<f64>,
    /// Completed cells whose victim attack succeeded. Populated (and
    /// serialized) only for explicit-victim rows.
    pub exploit_successes: Option<usize>,
    /// Mean hammer iterations to a successful exploit over cells that
    /// succeeded. Populated (and serialized) only for explicit-victim rows;
    /// `null` there when no cell succeeded.
    pub mean_time_to_exploit: Option<f64>,
    /// Escalation-rate delta against the undefended baseline on the same
    /// profile and mode (`None` when the campaign has no undefended cells
    /// for it).
    pub escalation_rate_delta_vs_undefended: Option<f64>,
}

impl Serialize for DefenseSummary {
    fn serialize(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("defense");
        self.defense.serialize(w);
        w.key("profile");
        self.profile.serialize(w);
        if !self.hammer_mode.is_default() {
            w.key("hammer_mode");
            w.string(self.hammer_mode.name());
        }
        if let Some(pattern) = self.pattern {
            w.key("pattern");
            w.string(pattern.name());
        }
        if let Some(victim) = self.victim {
            w.key("victim");
            w.string(victim.name());
        }
        w.key("cells");
        self.cells.serialize(w);
        w.key("errored_cells");
        self.errored_cells.serialize(w);
        w.key("escalations");
        self.escalations.serialize(w);
        w.key("escalation_rate");
        self.escalation_rate.serialize(w);
        w.key("flip_cells");
        self.flip_cells.serialize(w);
        w.key("mean_flips");
        self.mean_flips.serialize(w);
        w.key("mean_exploitable_flips");
        self.mean_exploitable_flips.serialize(w);
        w.key("mean_implicit_dram_rate");
        self.mean_implicit_dram_rate.serialize(w);
        w.key("mean_seconds_to_first_flip");
        self.mean_seconds_to_first_flip.serialize(w);
        if self.victim.is_some() {
            w.key("exploit_successes");
            self.exploit_successes.serialize(w);
            w.key("mean_time_to_exploit");
            self.mean_time_to_exploit.serialize(w);
        }
        w.key("escalation_rate_delta_vs_undefended");
        self.escalation_rate_delta_vs_undefended.serialize(w);
        w.end_object();
    }
}

/// Complete campaign result: inputs, per-cell rows, per-defense summaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Schema version of this report.
    pub schema_version: u32,
    /// Campaign base seed.
    pub base_seed: u64,
    /// The matrix that was run.
    pub matrix: ScenarioMatrix,
    /// Whether the attack ran in the superpage setting.
    pub superpages: bool,
    /// One row per cell, in canonical matrix order.
    pub cells: Vec<CellReport>,
    /// One summary per (defense, profile, mode) combination, in matrix axis
    /// order.
    pub summaries: Vec<DefenseSummary>,
}

impl CampaignReport {
    /// Renders the report as canonical pretty JSON (stable field order, fixed
    /// float formatting, `\n` line endings, trailing newline). Byte-stable
    /// across thread counts and platforms for identical campaigns.
    pub fn to_canonical_json(&self) -> String {
        let mut json = serde_json::to_string_pretty(self).expect("report serializes");
        json.push('\n');
        json
    }

    /// Builds one summary per (defense, profile, hammer-mode) axis
    /// combination, aggregating cells in row order. Errored cells are
    /// counted in [`DefenseSummary::errored_cells`] and excluded from every
    /// rate and mean. Exposed for the campaign runner and tests.
    pub fn summarize(matrix: &ScenarioMatrix, cells: &[CellReport]) -> Vec<DefenseSummary> {
        let mut summaries = Vec::new();
        for d in &matrix.defenses {
            for p in &matrix.profiles {
                for &m in &matrix.hammer_modes {
                    for &pat in &matrix.patterns {
                        for &vic in &matrix.victims {
                            let rows: Vec<&CellReport> = cells
                                .iter()
                                .filter(|c| {
                                    c.defense == d.kind()
                                        && c.profile == p.name()
                                        && c.hammer_mode == m
                                        && c.pattern == pat
                                        && c.victim == vic
                                })
                                .collect();
                            let completed: Vec<&CellReport> =
                                rows.iter().filter(|c| c.error.is_none()).copied().collect();
                            let n = completed.len();
                            let escalations = completed.iter().filter(|c| c.escalated).count();
                            let flip_cells =
                                completed.iter().filter(|c| c.flips_observed > 0).count();
                            let escalation_rate = if n == 0 {
                                0.0
                            } else {
                                escalations as f64 / n as f64
                            };
                            let mean = |f: &dyn Fn(&CellReport) -> f64| {
                                if n == 0 {
                                    0.0
                                } else {
                                    completed.iter().map(|c| f(c)).sum::<f64>() / n as f64
                                }
                            };
                            let first_flip: Vec<f64> = completed
                                .iter()
                                .filter_map(|c| c.seconds_to_first_flip)
                                .collect();
                            let exploit_times: Vec<f64> = completed
                                .iter()
                                .filter_map(|c| c.time_to_exploit)
                                .map(|t| t as f64)
                                .collect();
                            let baseline_rate = {
                                let base: Vec<&CellReport> = cells
                                    .iter()
                                    .filter(|c| {
                                        c.defense == DefenseKind::Undefended
                                            && c.profile == p.name()
                                            && c.hammer_mode == m
                                            && c.pattern == pat
                                            && c.victim == vic
                                            && c.error.is_none()
                                    })
                                    .collect();
                                if base.is_empty() {
                                    None
                                } else {
                                    Some(
                                        base.iter().filter(|c| c.escalated).count() as f64
                                            / base.len() as f64,
                                    )
                                }
                            };
                            summaries.push(DefenseSummary {
                                defense: d.kind(),
                                profile: p.name().to_string(),
                                hammer_mode: m,
                                pattern: pat,
                                victim: vic,
                                cells: rows.len(),
                                errored_cells: rows.len() - n,
                                escalations,
                                escalation_rate,
                                flip_cells,
                                mean_flips: mean(&|c| c.flips_observed as f64),
                                mean_exploitable_flips: mean(&|c| c.exploitable_flips as f64),
                                mean_implicit_dram_rate: mean(&|c| c.implicit_dram_rate),
                                mean_seconds_to_first_flip: if first_flip.is_empty() {
                                    None
                                } else {
                                    Some(first_flip.iter().sum::<f64>() / first_flip.len() as f64)
                                },
                                exploit_successes: vic.map(|_| {
                                    completed
                                        .iter()
                                        .filter(|c| c.exploit_succeeded == Some(true))
                                        .count()
                                }),
                                mean_time_to_exploit: if vic.is_none() || exploit_times.is_empty() {
                                    None
                                } else {
                                    Some(
                                        exploit_times.iter().sum::<f64>()
                                            / exploit_times.len() as f64,
                                    )
                                },
                                escalation_rate_delta_vs_undefended: baseline_rate
                                    .map(|base| escalation_rate - base),
                            });
                        }
                    }
                }
            }
        }
        summaries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{ProfileChoice, ScenarioMatrix};
    use pthammer_defenses::DefenseChoice;
    use pthammer_machine::MachineChoice;

    fn cell(defense: DefenseChoice, escalated: bool, flips: usize) -> CellReport {
        CellReport {
            machine: "Test Small".into(),
            defense: defense.kind(),
            profile: "ci".into(),
            hammer_mode: HammerMode::default(),
            pattern: None,
            victim: None,
            repetition: 0,
            cell_seed: 1,
            escalated,
            attempts: 2,
            flips_observed: flips,
            exploitable_flips: usize::from(escalated),
            trr_refreshes: 0,
            implicit_dram_rate: 0.9,
            seconds_to_first_flip: if flips > 0 { Some(1.5) } else { None },
            seconds_to_escalation: None,
            exploit_succeeded: None,
            time_to_exploit: None,
            route: None,
            error: None,
        }
    }

    fn matrix() -> ScenarioMatrix {
        ScenarioMatrix::new(
            vec![MachineChoice::TestSmall],
            vec![DefenseChoice::None, DefenseChoice::Zebram],
            vec![ProfileChoice::Ci],
            2,
        )
    }

    #[test]
    fn summaries_aggregate_per_defense() {
        let cells = vec![
            cell(DefenseChoice::None, true, 3),
            cell(DefenseChoice::None, true, 1),
            cell(DefenseChoice::Zebram, false, 2),
            cell(DefenseChoice::Zebram, false, 0),
        ];
        let summaries = CampaignReport::summarize(&matrix(), &cells);
        assert_eq!(summaries.len(), 2);
        let none = &summaries[0];
        assert_eq!(none.defense, DefenseKind::Undefended);
        assert_eq!(none.profile, "ci");
        assert_eq!(none.escalations, 2);
        assert!((none.escalation_rate - 1.0).abs() < 1e-12);
        assert!((none.mean_flips - 2.0).abs() < 1e-12);
        assert_eq!(none.escalation_rate_delta_vs_undefended, Some(0.0));
        let zebram = &summaries[1];
        assert_eq!(zebram.escalations, 0);
        assert_eq!(zebram.flip_cells, 1);
        assert_eq!(zebram.escalation_rate_delta_vs_undefended, Some(-1.0));
    }

    #[test]
    fn control_profiles_do_not_dilute_vulnerable_rates() {
        // Same defense on two profiles: the ci cells escalate, the
        // invulnerable control cells cannot. Per-profile summaries must keep
        // the ci escalation rate at 1.0 instead of averaging it down to 0.5.
        let m = ScenarioMatrix::new(
            vec![MachineChoice::TestSmall],
            vec![DefenseChoice::None],
            vec![ProfileChoice::Ci, ProfileChoice::Invulnerable],
            1,
        );
        let mut control = cell(DefenseChoice::None, false, 0);
        control.profile = "invulnerable".into();
        let cells = vec![cell(DefenseChoice::None, true, 2), control];
        let summaries = CampaignReport::summarize(&m, &cells);
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].profile, "ci");
        assert!((summaries[0].escalation_rate - 1.0).abs() < 1e-12);
        assert_eq!(summaries[1].profile, "invulnerable");
        assert!((summaries[1].escalation_rate - 0.0).abs() < 1e-12);
    }

    #[test]
    fn summaries_split_by_hammer_mode() {
        // A two-mode sweep: the default mode escalates, the explicit
        // baseline does not. Summaries must keep the rates apart and use
        // per-mode undefended baselines.
        let m = ScenarioMatrix::new(
            vec![MachineChoice::TestSmall],
            vec![DefenseChoice::None],
            vec![ProfileChoice::Ci],
            1,
        )
        .with_hammer_modes(vec![
            HammerMode::ImplicitDoubleSided,
            HammerMode::ExplicitDoubleSided,
        ]);
        let mut explicit = cell(DefenseChoice::None, false, 0);
        explicit.hammer_mode = HammerMode::ExplicitDoubleSided;
        let cells = vec![cell(DefenseChoice::None, true, 2), explicit];
        let summaries = CampaignReport::summarize(&m, &cells);
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].hammer_mode, HammerMode::ImplicitDoubleSided);
        assert!((summaries[0].escalation_rate - 1.0).abs() < 1e-12);
        assert_eq!(summaries[1].hammer_mode, HammerMode::ExplicitDoubleSided);
        assert!((summaries[1].escalation_rate - 0.0).abs() < 1e-12);
        assert_eq!(
            summaries[1].escalation_rate_delta_vs_undefended,
            Some(0.0),
            "explicit mode compares against the explicit undefended baseline"
        );
    }

    #[test]
    fn errored_cells_do_not_drag_down_implicit_rate() {
        let m = ScenarioMatrix::new(
            vec![MachineChoice::TestSmall],
            vec![DefenseChoice::None],
            vec![ProfileChoice::Ci],
            2,
        );
        let mut errored = cell(DefenseChoice::None, false, 0);
        errored.error = Some("aborted".into());
        errored.implicit_dram_rate = 0.0;
        let cells = vec![cell(DefenseChoice::None, false, 1), errored];
        let summaries = CampaignReport::summarize(&m, &cells);
        assert!((summaries[0].mean_implicit_dram_rate - 0.9).abs() < 1e-12);
        assert!((summaries[0].mean_flips - 1.0).abs() < 1e-12);
        assert_eq!(summaries[0].cells, 2);
        assert_eq!(summaries[0].errored_cells, 1);
    }

    #[test]
    fn delta_absent_without_undefended_baseline() {
        let m = ScenarioMatrix::new(
            vec![MachineChoice::TestSmall],
            vec![DefenseChoice::Zebram],
            vec![ProfileChoice::Ci],
            1,
        );
        let cells = vec![cell(DefenseChoice::Zebram, false, 0)];
        let summaries = CampaignReport::summarize(&m, &cells);
        assert_eq!(summaries[0].escalation_rate_delta_vs_undefended, None);
        assert_eq!(summaries[0].mean_seconds_to_first_flip, None);
    }

    #[test]
    fn canonical_json_is_stable_and_newline_terminated() {
        let report = CampaignReport {
            schema_version: REPORT_SCHEMA_VERSION,
            base_seed: 7,
            matrix: matrix(),
            superpages: false,
            cells: vec![cell(DefenseChoice::None, true, 1)],
            summaries: vec![],
        };
        let a = report.to_canonical_json();
        let b = report.to_canonical_json();
        assert_eq!(a, b);
        assert!(a.ends_with('\n'));
        assert!(a.contains("\"schema_version\": 1"));
        assert!(a.contains("\"undefended\""));
        // Default-mode reports carry no hammer_mode keys anywhere — the
        // pre-axis golden snapshot stays byte-identical.
        assert!(!a.contains("hammer_mode"));
    }

    #[test]
    fn pattern_rows_and_summaries_carry_the_pattern_key() {
        let mut row = cell(DefenseChoice::None, false, 0);
        row.pattern = Some(PatternChoice::Synthesized);
        row.trr_refreshes = 17;
        let mut w = JsonWriter::new(false);
        row.serialize(&mut w);
        let json = w.into_string();
        assert!(json.contains("\"pattern\":\"synthesized\""));
        assert!(json.contains("\"trr_refreshes\":17"));
        assert!(json.find("\"pattern\"").unwrap() < json.find("\"repetition\"").unwrap());
        assert!(
            json.find("\"exploitable_flips\"").unwrap() < json.find("\"trr_refreshes\"").unwrap()
        );
        assert!(
            json.find("\"trr_refreshes\"").unwrap() < json.find("\"implicit_dram_rate\"").unwrap()
        );

        // Pattern summaries split from the mode rows and use per-pattern
        // undefended baselines.
        let m = ScenarioMatrix::new(
            vec![MachineChoice::TestSmall],
            vec![DefenseChoice::None],
            vec![ProfileChoice::Ci],
            1,
        )
        .with_patterns(vec![None, Some(PatternChoice::Synthesized)]);
        let cells = vec![cell(DefenseChoice::None, false, 0), {
            let mut c = cell(DefenseChoice::None, true, 2);
            c.pattern = Some(PatternChoice::Synthesized);
            c
        }];
        let summaries = CampaignReport::summarize(&m, &cells);
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].pattern, None);
        assert!((summaries[0].escalation_rate - 0.0).abs() < 1e-12);
        assert_eq!(summaries[1].pattern, Some(PatternChoice::Synthesized));
        assert!((summaries[1].escalation_rate - 1.0).abs() < 1e-12);
        assert_eq!(
            summaries[1].escalation_rate_delta_vs_undefended,
            Some(0.0),
            "pattern rows compare against the pattern undefended baseline"
        );
        let mut w = JsonWriter::new(false);
        summaries[1].serialize(&mut w);
        assert!(w.into_string().contains("\"pattern\":\"synthesized\""));
    }

    #[test]
    fn victim_rows_and_summaries_carry_the_exploit_keys() {
        let mut row = cell(DefenseChoice::None, true, 2);
        row.victim = Some(VictimChoice::KeyRecovery);
        row.exploit_succeeded = Some(true);
        row.time_to_exploit = Some(4_800);
        let mut w = JsonWriter::new(false);
        row.serialize(&mut w);
        let json = w.into_string();
        assert!(json.contains("\"victim\":\"key-recovery\""));
        assert!(json.contains("\"exploit_succeeded\":true"));
        assert!(json.contains("\"time_to_exploit\":4800"));
        // The victim coordinate sits between pattern/profile and repetition;
        // the outcome keys sit between seconds_to_escalation and route.
        assert!(json.find("\"victim\"").unwrap() < json.find("\"repetition\"").unwrap());
        assert!(
            json.find("\"seconds_to_escalation\"").unwrap()
                < json.find("\"exploit_succeeded\"").unwrap()
        );
        assert!(json.find("\"time_to_exploit\"").unwrap() < json.find("\"route\"").unwrap());

        // Default-victim rows carry none of the keys.
        let mut w = JsonWriter::new(false);
        cell(DefenseChoice::None, true, 2).serialize(&mut w);
        let json = w.into_string();
        assert!(!json.contains("victim"));
        assert!(!json.contains("exploit_succeeded"));
        assert!(!json.contains("time_to_exploit"));

        // Victim summaries split per victim and aggregate exploit outcomes.
        let m = ScenarioMatrix::new(
            vec![MachineChoice::TestSmall],
            vec![DefenseChoice::None],
            vec![ProfileChoice::Ci],
            1,
        )
        .with_victims(vec![
            Some(VictimChoice::PteTakeover),
            Some(VictimChoice::KeyRecovery),
        ]);
        let cells = vec![
            {
                let mut c = cell(DefenseChoice::None, true, 2);
                c.victim = Some(VictimChoice::PteTakeover);
                c.exploit_succeeded = Some(true);
                c.time_to_exploit = Some(1_000);
                c
            },
            {
                let mut c = cell(DefenseChoice::None, false, 2);
                c.victim = Some(VictimChoice::KeyRecovery);
                c.exploit_succeeded = Some(false);
                c
            },
        ];
        let summaries = CampaignReport::summarize(&m, &cells);
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].victim, Some(VictimChoice::PteTakeover));
        assert_eq!(summaries[0].exploit_successes, Some(1));
        assert_eq!(summaries[0].mean_time_to_exploit, Some(1_000.0));
        assert_eq!(summaries[1].victim, Some(VictimChoice::KeyRecovery));
        assert_eq!(summaries[1].exploit_successes, Some(0));
        assert_eq!(summaries[1].mean_time_to_exploit, None);
        let mut w = JsonWriter::new(false);
        summaries[0].serialize(&mut w);
        let json = w.into_string();
        assert!(json.contains("\"victim\":\"pte-takeover\""));
        assert!(json.contains("\"exploit_successes\":1"));
        assert!(json.contains("\"mean_time_to_exploit\":1000.0"));
    }

    #[test]
    fn non_default_mode_rows_carry_the_mode_key() {
        let mut row = cell(DefenseChoice::None, false, 0);
        row.hammer_mode = HammerMode::ImplicitOneLocation;
        let mut w = JsonWriter::new(false);
        row.serialize(&mut w);
        let json = w.into_string();
        assert!(json.contains("\"hammer_mode\":\"implicit-one-location\""));
        // The mode key sits between the profile and repetition coordinates.
        assert!(json.find("\"profile\"").unwrap() < json.find("\"hammer_mode\"").unwrap());
        assert!(json.find("\"hammer_mode\"").unwrap() < json.find("\"repetition\"").unwrap());
    }
}

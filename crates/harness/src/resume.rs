//! Resumable, shardable campaign execution over the content-addressed cell
//! store.
//!
//! [`run_campaign`](crate::run_campaign) is all-or-nothing: kill it and every
//! cell recomputes. The entry points here thread the same cells through a
//! [`CellStore`] instead:
//!
//! * [`run_campaign_resumable`] consults the store before computing a cell
//!   and writes each completed cell through atomically, so a killed campaign
//!   resumes from its completed prefix for free — and a finished store turns
//!   re-runs into pure cache reads. The report is byte-identical to
//!   [`run_campaign`](crate::run_campaign)'s.
//! * [`run_campaign_shard`] computes only the cells a [`ShardSpec`] owns
//!   (plus an optional compute budget), so one matrix splits across
//!   processes, hosts, or CI jobs without coordination.
//! * [`merge_stores`] combines any set of compatible stores — shards, partial
//!   runs, interrupted runs — into the complete [`CampaignReport`], again
//!   byte-identical to the single-process run regardless of shard count or
//!   interleaving.
//!
//! Cache correctness rests on the store key and manifest: the key hashes the
//! cell's canonical coordinates plus [`CELL_SEED_SCHEMA_VERSION`], and
//! [`store_manifest`] fingerprints every campaign input that is not in the
//! key (base seed, superpage setting, attack scale — but never the worker
//! count, which cannot affect results). Anything that could change a cell's
//! bytes therefore either changes its key or refuses the store.

use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use serde::{Deserialize, Serialize};

use pthammer_store::{
    fnv1a_128, CellKey, CellLookup, CellStore, ShardSpec, StoreManifest, STORE_SCHEMA_VERSION,
};

use crate::campaign::{assemble_report, run_cell_instrumented, CampaignConfig, CellPerf};
use crate::decode::cell_report_from_json;
use crate::matrix::{CellCoord, ScenarioMatrix};
use crate::report::{CampaignReport, CellReport};
use crate::seeding::CELL_SEED_SCHEMA_VERSION;

/// Derives the content-address key for one campaign cell.
///
/// The canonical coordinate string mirrors the seeding rule: coordinate
/// *values* only, never matrix positions — plus the seed-schema version, so
/// behavior changes (which bump [`CELL_SEED_SCHEMA_VERSION`]) move every
/// cell to a fresh key instead of resurrecting stale cached results. Unlike
/// the seed itself, the key *does* include the defense and hammer mode:
/// those cells share attacker randomness but have distinct results, and each
/// gets its own store entry.
pub fn cell_store_key(coord: &CellCoord) -> CellKey {
    // The pattern and victim coordinates are appended only for cells that
    // set them, so every pre-axis cell key (and any store computed before
    // the axes existed) stays exactly as it was.
    let pattern = match coord.pattern {
        Some(p) => format!("|pattern={}", p.name()),
        None => String::new(),
    };
    let victim = match coord.victim {
        Some(v) => format!("|victim={}", v.name()),
        None => String::new(),
    };
    CellKey::from_canonical(&format!(
        "pthammer-cell|s{}|machine={}|defense={}|profile={}|mode={}|rep={}{}{}",
        CELL_SEED_SCHEMA_VERSION,
        coord.machine.name(),
        coord.defense.kind().name(),
        coord.profile.name(),
        coord.hammer_mode.name(),
        coord.repetition,
        pattern,
        victim,
    ))
}

/// Builds the [`StoreManifest`] binding a store to `config`'s campaign.
///
/// The config fingerprint hashes the canonical JSON of `config` with the
/// worker-thread count zeroed: thread count never affects results, so a
/// store computed at `--threads 8` must resume cleanly at `--threads 2`.
/// Every other knob (spray size, attempt caps, profiling trials, ...) does
/// affect results and therefore invalidates the store when it changes.
pub fn store_manifest(config: &CampaignConfig) -> StoreManifest {
    let mut thread_free = config.clone();
    thread_free.threads = 0;
    let canonical = serde_json::to_string(&thread_free).expect("config serializes");
    StoreManifest {
        store_schema: STORE_SCHEMA_VERSION,
        seed_schema: CELL_SEED_SCHEMA_VERSION,
        base_seed: config.base_seed,
        superpages: config.superpages,
        config_fingerprint: format!("{:032x}", fnv1a_128(canonical.as_bytes())),
    }
}

/// Accounting of one store-backed invocation: how each matrix cell was
/// satisfied. `pthammer-perf` reports these as the store's cache-hit
/// counters, and the CI resume/shard jobs assert on them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResumeStats {
    /// Cells in the matrix.
    pub cells_total: usize,
    /// Cells served from the store (hash-verified hits).
    pub cache_hits: usize,
    /// Cells computed (and written through) by this invocation.
    pub computed: usize,
    /// Computed cells whose store entry existed but failed verification or
    /// decoding (subset of [`computed`](Self::computed)).
    pub corrupt_recomputed: usize,
    /// Cells owned by other shards, untouched by this invocation.
    pub skipped_other_shard: usize,
    /// Owned, uncached cells left uncomputed because the compute budget ran
    /// out (the invocation is incomplete; resume to continue).
    pub budget_skipped: usize,
}

impl ResumeStats {
    /// Whether this invocation left owned cells uncomputed.
    pub fn incomplete(&self) -> bool {
        self.budget_skipped > 0
    }
}

/// Accounting of a [`merge_stores`] call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergeStats {
    /// Cells in the merged report.
    pub cells: usize,
    /// Cells taken from each store, in argument order (a cell cached in
    /// several stores counts for the first).
    pub per_store: Vec<usize>,
    /// Store entries skipped because they failed verification or decoding
    /// (the cell was then taken from a later store).
    pub corrupt_skipped: usize,
}

/// How one cell was satisfied during [`run_store_backed`].
enum CellSource {
    Cached(Box<CellReport>),
    Compute,
    SkippedShard,
    SkippedBudget,
}

/// Core store-backed runner: resolves every matrix cell against the store,
/// computes what is missing (in parallel, canonical collection order), and
/// writes completed cells through. Rows are `None` only for skipped cells.
fn run_store_backed(
    matrix: &ScenarioMatrix,
    config: &CampaignConfig,
    store: &CellStore,
    shard: &ShardSpec,
    compute_budget: Option<usize>,
) -> Result<(Vec<Option<CellReport>>, CellPerf, ResumeStats), String> {
    matrix
        .validate()
        .unwrap_or_else(|e| panic!("invalid scenario matrix: {e}"));
    let cells = matrix.cells();
    let mut stats = ResumeStats {
        cells_total: cells.len(),
        ..ResumeStats::default()
    };

    // Phase 1 (serial, cheap): classify every cell against the store.
    let mut sources: Vec<CellSource> = Vec::with_capacity(cells.len());
    let mut budget = compute_budget.unwrap_or(usize::MAX);
    for coord in &cells {
        let key = cell_store_key(coord);
        if !shard.owns(&key) {
            stats.skipped_other_shard += 1;
            sources.push(CellSource::SkippedShard);
            continue;
        }
        let corrupt = match store.get(&key) {
            // A verified body that no longer decodes predates a report-schema
            // change; recompute it like a corrupt entry.
            CellLookup::Hit(body) => match cell_report_from_json(&body) {
                Ok(report) => {
                    stats.cache_hits += 1;
                    sources.push(CellSource::Cached(Box::new(report)));
                    continue;
                }
                Err(_) => true,
            },
            CellLookup::Corrupt => true,
            CellLookup::Miss => false,
        };
        if budget == 0 {
            stats.budget_skipped += 1;
            sources.push(CellSource::SkippedBudget);
            continue;
        }
        budget -= 1;
        stats.computed += 1;
        stats.corrupt_recomputed += usize::from(corrupt);
        sources.push(CellSource::Compute);
    }

    // Phase 2 (parallel): compute the missing cells, write each through
    // atomically as it completes — a kill from here on loses at most the
    // in-flight cells.
    let to_compute: Vec<(usize, CellCoord)> = sources
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, CellSource::Compute))
        .map(|(i, _)| (i, cells[i]))
        .collect();
    let pool = ThreadPoolBuilder::new()
        .num_threads(config.threads)
        .build()
        .expect("worker pool");
    let computed: Vec<(usize, CellReport, CellPerf, Result<(), String>)> = pool.install(|| {
        to_compute
            .into_par_iter()
            .map(|(i, coord)| {
                let (report, perf) = run_cell_instrumented(&coord, config);
                let put = store
                    .put(
                        &cell_store_key(&coord),
                        &serde_json::to_string(&report).unwrap(),
                    )
                    .map_err(|e| e.to_string());
                (i, report, perf, put)
            })
            .collect()
    });

    // Phase 3: assemble rows in canonical order, aggregate perf over the
    // cells this invocation actually computed.
    let mut rows: Vec<Option<CellReport>> = sources
        .into_iter()
        .map(|s| match s {
            CellSource::Cached(report) => Some(*report),
            _ => None,
        })
        .collect();
    let mut perf = CellPerf::default();
    for (i, report, cell_perf, put) in computed {
        put.map_err(|e| format!("failed to persist cell {i}: {e}"))?;
        perf.absorb(&cell_perf);
        rows[i] = Some(report);
    }
    Ok((rows, perf, stats))
}

/// Runs the whole campaign through the store: cached cells are served from
/// disk (hash-verified), missing cells are computed in parallel and written
/// through atomically.
///
/// The report is **byte-identical** to [`run_campaign`](crate::run_campaign)
/// on the same matrix and config — whether the store started empty, full, or
/// anywhere in between (e.g. after a kill). `stats` says how the cells were
/// satisfied.
///
/// # Errors
///
/// Returns a description if the store cannot be written or a computed cell
/// cannot be persisted. (Matrix validation panics, as in
/// [`run_campaign`](crate::run_campaign).)
///
/// # Panics
///
/// Panics if the matrix fails [`ScenarioMatrix::validate`].
pub fn run_campaign_resumable(
    matrix: &ScenarioMatrix,
    config: &CampaignConfig,
    store: &CellStore,
) -> Result<(CampaignReport, ResumeStats), String> {
    let (report, _, stats) = run_campaign_resumable_instrumented(matrix, config, store)?;
    Ok((report, stats))
}

/// Like [`run_campaign_resumable`], additionally returning the deterministic
/// perf accounting aggregated over the cells **this invocation computed**
/// (cache hits perform no simulation, so a fully-warm run reports zero
/// counters — that asymmetry is the point of the cache).
///
/// # Errors
///
/// As [`run_campaign_resumable`].
pub fn run_campaign_resumable_instrumented(
    matrix: &ScenarioMatrix,
    config: &CampaignConfig,
    store: &CellStore,
) -> Result<(CampaignReport, CellPerf, ResumeStats), String> {
    let (rows, perf, stats) = run_store_backed(matrix, config, store, &ShardSpec::full(), None)?;
    let rows: Vec<CellReport> = rows
        .into_iter()
        .map(|r| r.expect("full-shard unbudgeted run resolves every cell"))
        .collect();
    Ok((assemble_report(matrix, config, rows), perf, stats))
}

/// Computes (only) the owned, uncached cells of one shard into the store.
///
/// `compute_budget` caps how many cells this invocation computes — the
/// deterministic stand-in for being killed partway: the first `budget`
/// missing cells (canonical order) complete and persist, the rest stay
/// missing, and [`ResumeStats::incomplete`] reports that a resume is needed.
/// No report is produced; once every shard's store is complete,
/// [`merge_stores`] builds it.
///
/// # Errors
///
/// As [`run_campaign_resumable`].
///
/// # Panics
///
/// Panics if the matrix fails [`ScenarioMatrix::validate`].
pub fn run_campaign_shard(
    matrix: &ScenarioMatrix,
    config: &CampaignConfig,
    store: &CellStore,
    shard: &ShardSpec,
    compute_budget: Option<usize>,
) -> Result<ResumeStats, String> {
    let (_, _, stats) = run_store_backed(matrix, config, store, shard, compute_budget)?;
    Ok(stats)
}

/// Merges any set of compatible stores into the complete campaign report.
///
/// Every matrix cell is looked up across `stores` in argument order; the
/// first verified, decodable entry wins. Nothing is computed and no store is
/// written. Because rows are assembled in canonical matrix order and cell
/// bodies round-trip exactly, the report is **byte-identical** to the
/// single-process [`run_campaign`](crate::run_campaign) output regardless of
/// how the cells were distributed across stores, shards, or invocations.
///
/// Callers are responsible for having opened every store against the same
/// [`store_manifest`] (which [`CellStore::open`] enforces per store).
///
/// # Errors
///
/// Lists the first cell no store can supply — a shard is incomplete or
/// missing.
///
/// # Panics
///
/// Panics if the matrix fails [`ScenarioMatrix::validate`].
pub fn merge_stores(
    matrix: &ScenarioMatrix,
    config: &CampaignConfig,
    stores: &[&CellStore],
) -> Result<(CampaignReport, MergeStats), String> {
    matrix
        .validate()
        .unwrap_or_else(|e| panic!("invalid scenario matrix: {e}"));
    if stores.is_empty() {
        return Err("merge needs at least one store".to_string());
    }
    let cells = matrix.cells();
    let mut stats = MergeStats {
        cells: cells.len(),
        per_store: vec![0; stores.len()],
        corrupt_skipped: 0,
    };
    let mut rows = Vec::with_capacity(cells.len());
    'cells: for coord in &cells {
        let key = cell_store_key(coord);
        for (i, store) in stores.iter().enumerate() {
            match store.get(&key) {
                CellLookup::Hit(body) => match cell_report_from_json(&body) {
                    Ok(report) => {
                        stats.per_store[i] += 1;
                        rows.push(report);
                        continue 'cells;
                    }
                    Err(_) => stats.corrupt_skipped += 1,
                },
                CellLookup::Corrupt => stats.corrupt_skipped += 1,
                CellLookup::Miss => {}
            }
        }
        return Err(format!(
            "no store holds cell machine={} defense={} profile={} mode={} rep={} \
             (key {}); the campaign or a shard is incomplete",
            coord.machine.name(),
            coord.defense.kind().name(),
            coord.profile.name(),
            coord.hammer_mode.name(),
            coord.repetition,
            key.hex(),
        ));
    }
    Ok((assemble_report(matrix, config, rows), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::matrix::ProfileChoice;
    use pthammer_defenses::DefenseChoice;
    use pthammer_machine::MachineChoice;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_store(config: &CampaignConfig, tag: &str) -> (CellStore, std::path::PathBuf) {
        let root = std::env::temp_dir().join(format!(
            "pthammer-harness-resume-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = CellStore::wipe(&root);
        (
            CellStore::open(&root, &store_manifest(config)).unwrap(),
            root,
        )
    }

    fn small_matrix() -> ScenarioMatrix {
        ScenarioMatrix::new(
            vec![MachineChoice::TestSmall],
            vec![DefenseChoice::None, DefenseChoice::Zebram],
            vec![ProfileChoice::Invulnerable],
            2,
        )
    }

    fn small_config() -> CampaignConfig {
        let mut config = CampaignConfig::ci(2026);
        config.max_attempts = 2;
        config.threads = 2;
        config
    }

    #[test]
    fn store_keys_separate_defense_and_mode_but_not_position() {
        let coord = CellCoord {
            machine: MachineChoice::TestSmall,
            defense: DefenseChoice::None,
            profile: ProfileChoice::Ci,
            hammer_mode: pthammer::HammerMode::default(),
            pattern: None,
            victim: None,
            repetition: 0,
        };
        assert_eq!(cell_store_key(&coord), cell_store_key(&coord.clone()));
        let mut defended = coord;
        defended.defense = DefenseChoice::Catt;
        assert_ne!(cell_store_key(&coord), cell_store_key(&defended));
        let mut moded = coord;
        moded.hammer_mode = pthammer::HammerMode::ImplicitOneLocation;
        assert_ne!(cell_store_key(&coord), cell_store_key(&moded));
        let mut rep = coord;
        rep.repetition = 1;
        assert_ne!(cell_store_key(&coord), cell_store_key(&rep));
        // The victim coordinate splits keys only when set, so victim-free
        // stores keep their pre-axis keys.
        let mut victim = coord;
        victim.victim = Some(pthammer::VictimChoice::CredCorruption);
        assert_ne!(cell_store_key(&coord), cell_store_key(&victim));
    }

    #[test]
    fn manifest_ignores_threads_but_not_scale() {
        let config = small_config();
        let mut other_threads = config.clone();
        other_threads.threads = 8;
        assert_eq!(store_manifest(&config), store_manifest(&other_threads));
        let mut other_scale = config.clone();
        other_scale.hammer_rounds_per_attempt += 1;
        assert_ne!(store_manifest(&config), store_manifest(&other_scale));
        let mut other_seed = config.clone();
        other_seed.base_seed += 1;
        assert_ne!(store_manifest(&config), store_manifest(&other_seed));
    }

    #[test]
    fn cold_then_warm_runs_are_byte_identical_to_the_plain_campaign() {
        let matrix = small_matrix();
        let config = small_config();
        let plain = run_campaign(&matrix, &config).to_canonical_json();
        let (store, root) = temp_store(&config, "coldwarm");

        let (cold, stats) = run_campaign_resumable(&matrix, &config, &store).unwrap();
        assert_eq!(cold.to_canonical_json(), plain);
        assert_eq!(stats.computed, matrix.len());
        assert_eq!(stats.cache_hits, 0);

        let (warm, stats) = run_campaign_resumable(&matrix, &config, &store).unwrap();
        assert_eq!(warm.to_canonical_json(), plain);
        assert_eq!(stats.cache_hits, matrix.len());
        assert_eq!(stats.computed, 0);
        CellStore::wipe(&root).unwrap();
    }

    #[test]
    fn budgeted_shard_run_is_resumable() {
        let matrix = small_matrix();
        let config = small_config();
        let (store, root) = temp_store(&config, "budget");
        let shard = ShardSpec::full();

        let stats = run_campaign_shard(&matrix, &config, &store, &shard, Some(1)).unwrap();
        assert_eq!(stats.computed, 1);
        assert_eq!(stats.budget_skipped, matrix.len() - 1);
        assert!(stats.incomplete());

        let stats = run_campaign_shard(&matrix, &config, &store, &shard, None).unwrap();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.computed, matrix.len() - 1);
        assert!(!stats.incomplete());

        let (merged, merge_stats) = merge_stores(&matrix, &config, &[&store]).unwrap();
        assert_eq!(
            merged.to_canonical_json(),
            run_campaign(&matrix, &config).to_canonical_json()
        );
        assert_eq!(merge_stats.per_store, vec![matrix.len()]);
        CellStore::wipe(&root).unwrap();
    }

    #[test]
    fn merge_reports_the_missing_cell() {
        let matrix = small_matrix();
        let config = small_config();
        let (store, root) = temp_store(&config, "missing");
        let err = merge_stores(&matrix, &config, &[&store]).unwrap_err();
        assert!(err.contains("no store holds cell"), "{err}");
        assert!(err.contains("machine=Test Small"), "{err}");
        CellStore::wipe(&root).unwrap();
    }
}

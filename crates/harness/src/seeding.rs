//! Deterministic per-cell seed derivation.
//!
//! Cell seeds are a pure function of the campaign base seed and the cell's
//! coordinate *values* — never of matrix position, worker id, or time — so
//! campaigns are reproducible cell-by-cell: running a single cell in
//! isolation uses the same seed it gets inside a full matrix, and reordering
//! or extending the matrix never changes existing cells' results.

use crate::matrix::CellCoord;

/// Version of the cell-seeding scheme (the [`cell_seed`] hash recipe and
/// everything upstream of it that determines a cell's result for given
/// coordinates). It is part of every cell's store key and of the store
/// manifest: bump it whenever simulator behavior changes intentionally —
/// alongside the `PTHAMMER_UPDATE_GOLDEN=1` golden refresh — so cached cell
/// reports computed under the old behavior are invalidated instead of being
/// merged into new campaigns.
pub const CELL_SEED_SCHEMA_VERSION: u32 = 1;

/// FNV-1a over a byte string, used to fold coordinate names into the seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64 finalizer: diffuses the folded coordinates into a
/// well-distributed 64-bit seed.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the deterministic seed for one campaign cell.
///
/// The hash input is `(base_seed, machine name, profile name, repetition)` —
/// deliberately **not** the defense, **not** the hammer mode, **not** the
/// pattern coordinate, and **not** the victim: cells that differ only in
/// those axes share a seed, so they attack the *same* DRAM weak-cell map
/// with the same attacker randomness (and pattern cells synthesize from the
/// same seed, and victim sweeps evaluate the same flips), and the
/// per-defense / per-strategy / per-pattern / per-victim deltas isolate the
/// axis itself (the paper's Section IV-G methodology, extended to strategy,
/// pattern and victim sweeps). Identical coordinates always map to an
/// identical seed regardless of matrix position.
pub fn cell_seed(base_seed: u64, coord: &CellCoord) -> u64 {
    let label = format!(
        "{}|{}|{}",
        coord.machine.name(),
        coord.profile.name(),
        coord.repetition
    );
    mix(base_seed ^ fnv1a(label.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::ProfileChoice;
    use pthammer_defenses::DefenseChoice;
    use pthammer_machine::MachineChoice;

    fn coord(rep: u32) -> CellCoord {
        CellCoord {
            machine: MachineChoice::TestSmall,
            defense: DefenseChoice::None,
            profile: ProfileChoice::Ci,
            hammer_mode: pthammer::HammerMode::default(),
            pattern: None,
            victim: None,
            repetition: rep,
        }
    }

    #[test]
    fn seed_is_stable_and_coordinate_sensitive() {
        assert_eq!(cell_seed(1, &coord(0)), cell_seed(1, &coord(0)));
        assert_ne!(cell_seed(1, &coord(0)), cell_seed(2, &coord(0)));
        assert_ne!(cell_seed(1, &coord(0)), cell_seed(1, &coord(1)));
        let mut other = coord(0);
        other.profile = ProfileChoice::Invulnerable;
        assert_ne!(cell_seed(1, &coord(0)), cell_seed(1, &other));
    }

    #[test]
    fn defense_axis_shares_the_seed_for_controlled_comparison() {
        // Section IV-G methodology: rows differing only in the defense must
        // attack the same weak-cell map, so the defense is the only variable.
        let mut defended = coord(0);
        defended.defense = DefenseChoice::Zebram;
        assert_eq!(cell_seed(1, &coord(0)), cell_seed(1, &defended));
    }

    #[test]
    fn hammer_mode_axis_shares_the_seed_for_controlled_comparison() {
        // Strategy sweeps follow the defense-axis rule: rows differing only
        // in the hammer mode attack the same weak-cell map, so flip-rate
        // deltas isolate the strategy itself.
        let mut one_location = coord(0);
        one_location.hammer_mode = pthammer::HammerMode::ImplicitOneLocation;
        assert_eq!(cell_seed(1, &coord(0)), cell_seed(1, &one_location));
    }

    #[test]
    fn pattern_axis_shares_the_seed_for_controlled_comparison() {
        // Pattern sweeps follow the defense/mode-axis rule: rows differing
        // only in the pattern coordinate attack the same weak-cell map (and
        // synthesize from the same seed), so stock-vs-pattern flip deltas
        // isolate the pattern itself.
        let mut synthesized = coord(0);
        synthesized.pattern = Some(pthammer_patterns::PatternChoice::Synthesized);
        assert_eq!(cell_seed(1, &coord(0)), cell_seed(1, &synthesized));
    }

    #[test]
    fn victim_axis_shares_the_seed_for_controlled_comparison() {
        // Victim sweeps follow the same rule: rows differing only in the
        // victim hammer the same weak-cell map and see the same flips, so
        // per-victim exploit-outcome deltas isolate the victim itself.
        let mut key_recovery = coord(0);
        key_recovery.victim = Some(pthammer::VictimChoice::KeyRecovery);
        assert_eq!(cell_seed(1, &coord(0)), cell_seed(1, &key_recovery));
    }

    #[test]
    fn seed_depends_on_values_not_matrix_position() {
        // The same coordinates must hash identically no matter which matrix
        // they appear in; nothing positional enters the hash.
        let c = coord(3);
        let direct = cell_seed(99, &c);
        let in_other_context = cell_seed(99, &c.clone());
        assert_eq!(direct, in_other_context);
    }
}

//! Decoding stored canonical cell JSON back into [`CellReport`]s.
//!
//! The offline serde stub has no derive-based deserializer, so this module
//! is the hand-written inverse of `CellReport`'s hand-written `Serialize`:
//! it reads the [`serde_json::Value`] tree of a stored cell body and
//! rebuilds the exact report — bit-for-bit, including `f64` fields, because
//! the writer emits shortest-representation decimals and `str::parse::<f64>`
//! recovers the identical bits. Byte-identical resume and shard-merge
//! reports depend on this round trip being exact, and
//! `decoded_report_round_trips_exactly` (plus the golden byte-compares in
//! `tests/resumable_campaign.rs`) pins it.

use std::str::FromStr;

use pthammer::{HammerMode, VictimChoice};
use pthammer_kernel::DefenseKind;
use pthammer_patterns::PatternChoice;

use crate::report::CellReport;

/// Parses a stored cell body (canonical compact `CellReport` JSON) back into
/// the report.
///
/// # Errors
///
/// Describes the first missing or mistyped field. Storage corruption is
/// already excluded by the store's content hash when the body comes from a
/// [`CellLookup::Hit`](pthammer_store::CellLookup); a decode error here
/// therefore means the entry predates a report-schema change, and callers
/// treat it like a corrupt entry (recompute) rather than failing the
/// campaign.
pub fn cell_report_from_json(body: &str) -> Result<CellReport, String> {
    let value = serde_json::from_str(body).map_err(|e| format!("cell body is not JSON: {e}"))?;
    let field = |name: &str| {
        value
            .get(name)
            .ok_or_else(|| format!("cell body is missing `{name}`"))
    };
    let string = |name: &str| {
        field(name)?
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("cell field `{name}` is not a string"))
    };
    let u64_of = |name: &str| {
        field(name)?
            .as_u64()
            .ok_or_else(|| format!("cell field `{name}` is not an unsigned integer"))
    };
    let f64_of = |name: &str| {
        field(name)?
            .as_f64()
            .ok_or_else(|| format!("cell field `{name}` is not a number"))
    };
    let opt_f64 = |name: &str| -> Result<Option<f64>, String> {
        let v = field(name)?;
        if v.is_null() {
            return Ok(None);
        }
        v.as_f64()
            .map(Some)
            .ok_or_else(|| format!("cell field `{name}` is not a number or null"))
    };
    let opt_string = |name: &str| -> Result<Option<String>, String> {
        let v = field(name)?;
        if v.is_null() {
            return Ok(None);
        }
        v.as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("cell field `{name}` is not a string or null"))
    };

    // `hammer_mode` is emitted only for non-default modes (the golden
    // snapshot predates the axis); absence decodes to the default.
    let hammer_mode = match value.get("hammer_mode") {
        None => HammerMode::default(),
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| "cell field `hammer_mode` is not a string".to_string())?;
            HammerMode::from_str(name)?
        }
    };

    // `pattern` is emitted only for pattern cells; absence decodes to none.
    let pattern = match value.get("pattern") {
        None => None,
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| "cell field `pattern` is not a string".to_string())?;
            Some(PatternChoice::from_str(name)?)
        }
    };

    // `trr_refreshes` is emitted only when non-zero (TRR-era machines);
    // absence decodes to zero.
    let trr_refreshes = match value.get("trr_refreshes") {
        None => 0,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| "cell field `trr_refreshes` is not an unsigned integer".to_string())?,
    };

    // `victim` — and, with it, the `exploit_succeeded` / `time_to_exploit`
    // outcome keys — is emitted only for explicit-victim cells; absence
    // decodes to the default (victim-free) row.
    let victim = match value.get("victim") {
        None => None,
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| "cell field `victim` is not a string".to_string())?;
            Some(VictimChoice::from_str(name)?)
        }
    };
    let (exploit_succeeded, time_to_exploit) = if victim.is_some() {
        let succeeded = match field("exploit_succeeded")? {
            v if v.is_null() => None,
            v => Some(v.as_bool().ok_or_else(|| {
                "cell field `exploit_succeeded` is not a bool or null".to_string()
            })?),
        };
        let time = match field("time_to_exploit")? {
            v if v.is_null() => None,
            v => Some(v.as_u64().ok_or_else(|| {
                "cell field `time_to_exploit` is not an unsigned integer or null".to_string()
            })?),
        };
        (succeeded, time)
    } else {
        (None, None)
    };

    Ok(CellReport {
        machine: string("machine")?,
        defense: DefenseKind::from_str(&string("defense")?)?,
        profile: string("profile")?,
        hammer_mode,
        pattern,
        victim,
        repetition: u32::try_from(u64_of("repetition")?)
            .map_err(|_| "cell field `repetition` overflows u32".to_string())?,
        cell_seed: u64_of("cell_seed")?,
        escalated: field("escalated")?
            .as_bool()
            .ok_or_else(|| "cell field `escalated` is not a bool".to_string())?,
        attempts: u64_of("attempts")? as usize,
        flips_observed: u64_of("flips_observed")? as usize,
        exploitable_flips: u64_of("exploitable_flips")? as usize,
        trr_refreshes,
        implicit_dram_rate: f64_of("implicit_dram_rate")?,
        seconds_to_first_flip: opt_f64("seconds_to_first_flip")?,
        seconds_to_escalation: opt_f64("seconds_to_escalation")?,
        exploit_succeeded,
        time_to_exploit,
        route: opt_string("route")?,
        error: opt_string("error")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tricky_report() -> CellReport {
        CellReport {
            machine: "Test Small".into(),
            defense: DefenseKind::RipRh,
            profile: "ci".into(),
            hammer_mode: HammerMode::ImplicitOneLocation,
            pattern: Some(PatternChoice::Synthesized),
            victim: Some(VictimChoice::KeyRecovery),
            repetition: 2,
            cell_seed: u64::MAX - 1,
            escalated: true,
            attempts: 3,
            flips_observed: 7,
            exploitable_flips: 1,
            trr_refreshes: u64::MAX - 3,
            implicit_dram_rate: 0.1 + 0.2, // not exactly representable
            seconds_to_first_flip: Some(1.0e-7),
            seconds_to_escalation: None,
            exploit_succeeded: Some(true),
            time_to_exploit: Some(u64::MAX - 7),
            route: Some("PageTable { pte: 0x1000 }".into()),
            error: Some("line1\nline2 \"quoted\"".into()),
        }
    }

    #[test]
    fn decoded_report_round_trips_exactly() {
        for report in [tricky_report(), {
            let mut r = tricky_report();
            r.hammer_mode = HammerMode::default();
            r.pattern = None;
            r.victim = None;
            r.trr_refreshes = 0;
            r.exploit_succeeded = None;
            r.time_to_exploit = None;
            r.route = None;
            r.error = None;
            r
        }] {
            let body = serde_json::to_string(&report).unwrap();
            let decoded = cell_report_from_json(&body).unwrap();
            assert_eq!(decoded, report);
            // Bit-exact floats, not just PartialEq-equal.
            assert_eq!(
                decoded.implicit_dram_rate.to_bits(),
                report.implicit_dram_rate.to_bits()
            );
            // Byte-exact re-serialization — what merge actually emits.
            assert_eq!(serde_json::to_string(&decoded).unwrap(), body);
        }
    }

    #[test]
    fn missing_mode_key_decodes_to_the_default() {
        let mut report = tricky_report();
        report.hammer_mode = HammerMode::default();
        let body = serde_json::to_string(&report).unwrap();
        assert!(!body.contains("hammer_mode"));
        assert_eq!(
            cell_report_from_json(&body).unwrap().hammer_mode,
            HammerMode::ImplicitDoubleSided
        );
    }

    #[test]
    fn missing_pattern_and_trr_keys_decode_to_their_defaults() {
        let mut report = tricky_report();
        report.pattern = None;
        report.trr_refreshes = 0;
        let body = serde_json::to_string(&report).unwrap();
        assert!(!body.contains("\"pattern\""));
        assert!(!body.contains("trr_refreshes"));
        let decoded = cell_report_from_json(&body).unwrap();
        assert_eq!(decoded.pattern, None);
        assert_eq!(decoded.trr_refreshes, 0);
    }

    #[test]
    fn missing_victim_keys_decode_to_the_default_row() {
        let mut report = tricky_report();
        report.victim = None;
        report.exploit_succeeded = None;
        report.time_to_exploit = None;
        let body = serde_json::to_string(&report).unwrap();
        assert!(!body.contains("\"victim\""));
        assert!(!body.contains("exploit_succeeded"));
        assert!(!body.contains("time_to_exploit"));
        let decoded = cell_report_from_json(&body).unwrap();
        assert_eq!(decoded.victim, None);
        assert_eq!(decoded.exploit_succeeded, None);
        assert_eq!(decoded.time_to_exploit, None);

        // An unsuccessful explicit-victim row round-trips its nulls.
        let mut report = tricky_report();
        report.exploit_succeeded = Some(false);
        report.time_to_exploit = None;
        let body = serde_json::to_string(&report).unwrap();
        assert!(body.contains("\"exploit_succeeded\":false"));
        assert!(body.contains("\"time_to_exploit\":null"));
        assert_eq!(cell_report_from_json(&body).unwrap(), report);
    }

    #[test]
    fn schema_drift_is_a_described_error() {
        let body = serde_json::to_string(&tricky_report()).unwrap();
        let err = cell_report_from_json(&body.replace("\"attempts\"", "\"tries\"")).unwrap_err();
        assert!(err.contains("attempts"), "{err}");
        let err = cell_report_from_json("][").unwrap_err();
        assert!(err.contains("JSON"), "{err}");
        let err = cell_report_from_json("{\"machine\":3}").unwrap_err();
        assert!(err.contains("machine"), "{err}");
    }
}

//! Content-addressed caching of victim flip profiles.
//!
//! The [`KeyRecovery`] victim's `profile` stage is a pure function of the
//! machine *configuration* (weak-cell model, DRAM seed, geometry) — never of
//! simulated memory state — so its [`FlipProfile`] is perfect cache fodder:
//! the key hashes everything the template depends on, and the value is the
//! profile's canonical JSON. The cache reuses the [`CellStore`] machinery of
//! `pthammer-store` (atomic write-through, content-hash-verified reads,
//! manifest-guarded opens), and a hit hands back exactly the profile a fresh
//! templating pass would produce. `repro_victims --profile-cache DIR`
//! consults it so repeat sweeps of the same machine skip re-templating.

use std::path::{Path, PathBuf};

use pthammer::victim::KeyRecovery;
use pthammer::{FlipProfile, FlipTarget};
use pthammer_machine::MachineConfig;
use pthammer_store::{
    fnv1a_128, CellKey, CellLookup, CellStore, StoreError, StoreManifest, STORE_SCHEMA_VERSION,
};

/// Version of the flip-profile templating scheme (the weak-cell walk in
/// [`KeyRecovery::template_profile`] and the profile encoding). Bump on any
/// behavioral change so stale cached profiles are invalidated instead of
/// resurrected.
pub const VICTIM_PROFILE_SCHEMA_VERSION: u32 = 1;

/// How a cached flip-profile request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileSource {
    /// Served from the store (hash-verified, byte-identical to a fresh
    /// templating pass).
    Cached,
    /// Templated by this invocation and written through.
    Computed,
    /// Templated because a store entry existed but failed verification or
    /// decoding.
    Recomputed,
}

/// A content-addressed, on-disk flip-profile cache.
#[derive(Debug)]
pub struct VictimProfileCache {
    store: CellStore,
}

impl VictimProfileCache {
    /// The manifest binding a cache directory to the templating schema.
    ///
    /// Per-request variability (machine, flip model, seed) lives entirely in
    /// the keys, so one cache serves every machine and seed; the manifest
    /// only refuses directories written by an incompatible store or
    /// templating schema.
    pub fn manifest() -> StoreManifest {
        StoreManifest {
            store_schema: STORE_SCHEMA_VERSION,
            seed_schema: VICTIM_PROFILE_SCHEMA_VERSION,
            base_seed: 0,
            superpages: false,
            config_fingerprint: format!(
                "{:032x}",
                fnv1a_128(b"pthammer-harness victim profile cache")
            ),
        }
    }

    /// Opens (or initializes) the cache at `root`.
    ///
    /// # Errors
    ///
    /// Propagates [`CellStore::open`] errors, including a manifest mismatch
    /// for directories created under another schema.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Ok(Self {
            store: CellStore::open(root, &Self::manifest())?,
        })
    }

    /// Deletes a cache directory (missing is fine).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than "not found".
    pub fn wipe(root: impl AsRef<Path>) -> std::io::Result<()> {
        CellStore::wipe(root)
    }

    /// The content-address of one machine's key-recovery flip profile.
    ///
    /// Covers every input of [`KeyRecovery::template_profile`]: the flip
    /// model parameters and seed, and the geometry the weak-cell walk spans.
    pub fn key(config: &MachineConfig) -> CellKey {
        let flip = &config.dram.flip_profile;
        CellKey::from_canonical(&format!(
            "pthammer-victim-profile|s{}|victim={}|machine={}|flip_seed={}|density={}|\
             max_cells={}|threshold={}..{}|true_fraction={}|row_bytes={}|banks={}",
            VICTIM_PROFILE_SCHEMA_VERSION,
            KeyRecovery::NAME,
            config.name,
            config.dram.flip_seed,
            flip.weak_row_density,
            flip.max_weak_cells_per_row,
            flip.min_threshold,
            flip.max_threshold,
            flip.true_cell_fraction,
            config.dram.geometry.row_bytes,
            config.dram.geometry.total_banks(),
        ))
    }

    /// Returns the cached profile for `config`, if present and valid.
    pub fn get(&self, config: &MachineConfig) -> Option<FlipProfile> {
        match self.store.get(&Self::key(config)) {
            CellLookup::Hit(body) => flip_profile_from_json(&body).ok(),
            CellLookup::Miss | CellLookup::Corrupt => None,
        }
    }

    /// Templates through the cache: a verified hit is returned as-is
    /// (byte-identical to a fresh pass, by determinism plus the canonical
    /// JSON round trip); a miss or corrupt entry triggers the templating
    /// walk and an atomic write-through.
    ///
    /// # Errors
    ///
    /// Returns store errors from the write-through; lookups never fail
    /// (corruption means recompute).
    pub fn template_cached(
        &self,
        config: &MachineConfig,
    ) -> Result<(FlipProfile, ProfileSource), StoreError> {
        let key = Self::key(config);
        let corrupt = match self.store.get(&key) {
            CellLookup::Hit(body) => match flip_profile_from_json(&body) {
                Ok(profile) => return Ok((profile, ProfileSource::Cached)),
                Err(_) => true,
            },
            CellLookup::Corrupt => true,
            CellLookup::Miss => false,
        };
        let profile = KeyRecovery::template_profile(config);
        self.store.put(&key, &profile.to_canonical_json())?;
        Ok((
            profile,
            if corrupt {
                ProfileSource::Recomputed
            } else {
                ProfileSource::Computed
            },
        ))
    }
}

/// Parses a stored cache body (canonical compact [`FlipProfile`] JSON) back
/// into the profile — the hand-written inverse of the profile's `Serialize`,
/// in the same style as [`cell_report_from_json`](crate::cell_report_from_json).
///
/// # Errors
///
/// Describes the first missing or mistyped field; callers treat a decode
/// error like a corrupt entry (recompute).
pub fn flip_profile_from_json(body: &str) -> Result<FlipProfile, String> {
    let value = serde_json::from_str(body).map_err(|e| format!("profile body is not JSON: {e}"))?;
    let string = |name: &str| {
        value
            .get(name)
            .ok_or_else(|| format!("profile body is missing `{name}`"))?
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("profile field `{name}` is not a string"))
    };
    let targets = value
        .get("targets")
        .ok_or_else(|| "profile body is missing `targets`".to_string())?
        .as_array()
        .ok_or_else(|| "profile field `targets` is not an array".to_string())?
        .iter()
        .map(|entry| {
            let u64_of = |name: &str| {
                entry
                    .get(name)
                    .ok_or_else(|| format!("flip target is missing `{name}`"))?
                    .as_u64()
                    .ok_or_else(|| format!("flip target field `{name}` is not an unsigned integer"))
            };
            Ok(FlipTarget {
                bank_unit: u32::try_from(u64_of("bank_unit")?)
                    .map_err(|_| "flip target `bank_unit` overflows u32".to_string())?,
                row: u32::try_from(u64_of("row")?)
                    .map_err(|_| "flip target `row` overflows u32".to_string())?,
                byte_in_row: u32::try_from(u64_of("byte_in_row")?)
                    .map_err(|_| "flip target `byte_in_row` overflows u32".to_string())?,
                bit: u8::try_from(u64_of("bit")?)
                    .map_err(|_| "flip target `bit` overflows u8".to_string())?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(FlipProfile {
        victim: string("victim")?,
        machine: string("machine")?,
        dram_seed: value
            .get("dram_seed")
            .ok_or_else(|| "profile body is missing `dram_seed`".to_string())?
            .as_u64()
            .ok_or_else(|| "profile field `dram_seed` is not an unsigned integer".to_string())?,
        targets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pthammer_dram::FlipModelProfile;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_cache() -> (VictimProfileCache, std::path::PathBuf) {
        let root = std::env::temp_dir().join(format!(
            "pthammer-victim-cache-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = VictimProfileCache::wipe(&root);
        (VictimProfileCache::open(&root).unwrap(), root)
    }

    fn machine(seed: u64) -> MachineConfig {
        MachineConfig::test_small(FlipModelProfile::ci(), seed)
    }

    #[test]
    fn keys_separate_machine_seed_and_flip_model() {
        let a = VictimProfileCache::key(&machine(1));
        assert_eq!(a, VictimProfileCache::key(&machine(1)));
        assert_ne!(a, VictimProfileCache::key(&machine(2)));
        let invulnerable = MachineConfig::test_small(FlipModelProfile::invulnerable(), 1);
        assert_ne!(a, VictimProfileCache::key(&invulnerable));
    }

    #[test]
    fn profile_round_trips_through_canonical_json() {
        let fresh = KeyRecovery::template_profile(&machine(23));
        assert!(!fresh.is_empty(), "ci profile must template targets");
        let decoded = flip_profile_from_json(&fresh.to_canonical_json()).unwrap();
        assert_eq!(decoded, fresh);
        assert_eq!(decoded.to_canonical_json(), fresh.to_canonical_json());
    }

    #[test]
    fn cold_then_warm_requests_are_byte_identical() {
        let (cache, root) = temp_cache();
        let cfg = machine(11);
        let (cold, source) = cache.template_cached(&cfg).unwrap();
        assert_eq!(source, ProfileSource::Computed);
        let (warm, source) = cache.template_cached(&cfg).unwrap();
        assert_eq!(source, ProfileSource::Cached);
        assert_eq!(cold, warm);
        assert_eq!(
            cold.to_canonical_json(),
            warm.to_canonical_json(),
            "a cache hit must reproduce the fresh templating pass byte for byte"
        );
        assert_eq!(cache.get(&cfg), Some(cold));
        assert_eq!(cache.get(&machine(12)), None);
        VictimProfileCache::wipe(&root).unwrap();
    }

    #[test]
    fn corrupt_entries_are_recomputed_not_trusted() {
        let (cache, root) = temp_cache();
        let cfg = machine(3);
        let (fresh, _) = cache.template_cached(&cfg).unwrap();
        let key = VictimProfileCache::key(&cfg);
        let path = root.join("cells").join(format!("{}.json", key.hex()));
        assert!(path.exists(), "cache entry should exist at {path:?}");
        std::fs::write(&path, "garbage").unwrap();
        let (recovered, source) = cache.template_cached(&cfg).unwrap();
        assert_eq!(source, ProfileSource::Recomputed);
        assert_eq!(recovered, fresh);
        VictimProfileCache::wipe(&root).unwrap();
    }
}

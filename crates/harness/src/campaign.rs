//! The campaign runner: fan cells out over worker threads, aggregate rows.

use pthammer::{pairs::pair_stride, AttackConfig, EventSink, HammerMode, PtHammer, RunOptions};
use pthammer_defenses::DefenseChoice;
use pthammer_kernel::KernelConfig;
use pthammer_machine::MachineConfig;
use pthammer_patterns::{PatternHammer, SynthesisConfig};
use pthammer_perf::{HammerEventTally, MachineCounters};
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use serde::{Deserialize, Serialize};

use crate::matrix::{CellCoord, ScenarioMatrix};
use crate::report::{CampaignReport, CellReport, REPORT_SCHEMA_VERSION};
use crate::seeding::cell_seed;

/// Campaign-wide knobs: base seed, parallelism, and the attack scale applied
/// to every cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Base seed every cell seed is derived from.
    pub base_seed: u64,
    /// Worker threads (0 = one per available core). Thread count never
    /// affects results, only wall-clock time.
    pub threads: usize,
    /// Run the attack in the superpage setting.
    pub superpages: bool,
    /// Virtual-address span of the page-table spray per cell.
    pub spray_bytes: u64,
    /// Double-sided hammer iterations per attempt.
    pub hammer_rounds_per_attempt: u64,
    /// Maximum hammer attempts per cell.
    pub max_attempts: usize,
    /// Profiling trials for LLC eviction-set selection.
    pub llc_profile_trials: usize,
    /// Candidate pairs verified per attempt batch.
    pub pair_candidates_per_round: usize,
    /// Profiling trials for TLB eviction-set selection.
    pub tlb_profile_trials: usize,
    /// Maximum observed flips before a cell gives up on escalation.
    pub max_flips: usize,
    /// LLC eviction buffer size as a multiple of LLC capacity.
    pub eviction_buffer_factor: f64,
    /// `struct cred` spray (sibling processes) for CTA cells, matching the
    /// paper's Section IV-G bypass.
    pub cta_cred_spray: usize,
    /// Attempt cap against ZebRAM (bounded wasted effort; the paper expects
    /// ZebRAM to stop the attack).
    pub zebram_attempt_cap: usize,
    /// Tolerated TLB eviction-set miss-rate drop while trimming
    /// (Algorithm 1).
    pub tlb_trim_tolerance: f64,
}

impl CampaignConfig {
    /// CI-scale configuration: small sprays and few attempts so a ≥24-cell
    /// matrix finishes in CI. Pair with [`ScenarioMatrix::ci_default`].
    pub fn ci(base_seed: u64) -> Self {
        Self {
            base_seed,
            threads: 0,
            superpages: false,
            spray_bytes: 640 << 20,
            hammer_rounds_per_attempt: 1_200,
            max_attempts: 4,
            llc_profile_trials: 6,
            pair_candidates_per_round: 4,
            tlb_profile_trials: 20,
            max_flips: 16,
            eviction_buffer_factor: 2.0,
            cta_cred_spray: 256,
            zebram_attempt_cap: 3,
            tlb_trim_tolerance: 0.05,
        }
    }

    /// CI-scale configuration for the TRR-era matrix
    /// ([`ScenarioMatrix::trr_pattern_ci`]): like [`ci`](Self::ci) but with
    /// a full 1 GiB page-table spray — eight pair strides on the small test
    /// machines, enough room for many-sided aggressor sets larger than the
    /// TRR sampler — and a bigger attempt budget: wide aggressor windows are
    /// rejected (or occasionally false-arm and waste an attempt) whenever a
    /// mid-spray kernel page-table allocation splits their rows across two
    /// banks, so pattern cells need several candidates to land a clean,
    /// fully verified window over a weak victim.
    pub fn trr_ci(base_seed: u64) -> Self {
        Self {
            spray_bytes: 1 << 30,
            max_attempts: 10,
            ..Self::ci(base_seed)
        }
    }

    /// Scaled configuration matching the bench scenarios' default mode
    /// (Table I machines with the `fast` profile).
    pub fn scaled(base_seed: u64) -> Self {
        Self {
            base_seed,
            threads: 0,
            superpages: false,
            spray_bytes: 1 << 30,
            hammer_rounds_per_attempt: 2_500,
            max_attempts: 12,
            llc_profile_trials: 6,
            pair_candidates_per_round: 4,
            tlb_profile_trials: 20,
            max_flips: 16,
            eviction_buffer_factor: 2.0,
            cta_cred_spray: 2_000,
            zebram_attempt_cap: 6,
            tlb_trim_tolerance: 0.05,
        }
    }

    /// Full paper-calibrated configuration (substantial host runtime):
    /// derived field-for-field from [`AttackConfig::paper`] — the single
    /// source of the paper-scale knobs — plus the paper's 32 000-process
    /// cred spray for CTA.
    pub fn full(base_seed: u64) -> Self {
        let paper = AttackConfig::paper(0, false);
        Self {
            base_seed,
            threads: 0,
            superpages: false,
            spray_bytes: paper.spray_bytes,
            hammer_rounds_per_attempt: paper.hammer_rounds_per_attempt,
            max_attempts: paper.max_attempts,
            llc_profile_trials: paper.llc_profile_trials,
            pair_candidates_per_round: paper.pair_candidates_per_round,
            tlb_profile_trials: paper.tlb_profile_trials,
            max_flips: paper.max_flips,
            eviction_buffer_factor: paper.eviction_buffer_factor,
            cta_cred_spray: 32_000,
            zebram_attempt_cap: 6,
            tlb_trim_tolerance: paper.tlb_trim_tolerance,
        }
    }

    /// The synthesis configuration pattern cells search with: the machine's
    /// TRR sampler, timings and flip thresholds, plus how many pair strides
    /// this campaign's spray actually offers (wide aggressor sets must fit
    /// it to arm).
    pub fn synthesis_config(&self, machine: &MachineConfig) -> SynthesisConfig {
        let stride = pair_stride(machine.dram.geometry.row_span_bytes());
        SynthesisConfig {
            spray_strides: u32::try_from(self.spray_bytes / stride)
                .unwrap_or(u32::MAX)
                .max(1),
            ..SynthesisConfig::for_machine(machine)
        }
    }

    /// The attack configuration for one cell.
    pub fn attack_config(
        &self,
        seed: u64,
        defense: DefenseChoice,
        hammer_mode: HammerMode,
    ) -> AttackConfig {
        let max_attempts = if defense == DefenseChoice::Zebram {
            self.max_attempts.min(self.zebram_attempt_cap)
        } else {
            self.max_attempts
        };
        AttackConfig {
            hammer_mode,
            spray_bytes: self.spray_bytes,
            hammer_rounds_per_attempt: self.hammer_rounds_per_attempt,
            max_attempts,
            llc_profile_trials: self.llc_profile_trials,
            pair_candidates_per_round: self.pair_candidates_per_round,
            tlb_profile_trials: self.tlb_profile_trials,
            max_flips: self.max_flips,
            eviction_buffer_factor: self.eviction_buffer_factor,
            tlb_trim_tolerance: self.tlb_trim_tolerance,
            ..AttackConfig::quick_test(seed, self.superpages)
        }
    }
}

/// Deterministic perf accounting of one campaign cell (or, after
/// [`CellPerf::absorb`], of a whole campaign): the simulated-hardware
/// counters plus the measured hammer-iteration count.
///
/// The iteration count comes from
/// [`AttackOutcome::hammer_iterations`](pthammer::AttackOutcome) — the
/// hammer loop's own tally — so every consumer (perf reports, repro
/// binaries, this harness) reports the same number instead of re-deriving
/// it from configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CellPerf {
    /// Simulated hardware counters accumulated by the cell's machine.
    pub counters: MachineCounters,
    /// Double-sided hammer iterations the attack actually performed.
    pub hammer_iterations: u64,
    /// Total simulated cycles the cell consumed.
    pub sim_cycles: u64,
}

impl CellPerf {
    /// Sums another cell's accounting into this one (campaign aggregation).
    pub fn absorb(&mut self, other: &CellPerf) {
        self.counters.absorb(&other.counters);
        self.hammer_iterations += other.hammer_iterations;
        self.sim_cycles += other.sim_cycles;
    }
}

/// Runs a single campaign cell to completion.
///
/// The cell is fully self-contained: it boots its own defended system from
/// the coordinate-derived seed, so calling this directly (e.g. to reproduce
/// one golden-snapshot row) gives exactly the result the full matrix run
/// records.
pub fn run_cell(coord: &CellCoord, config: &CampaignConfig) -> CellReport {
    run_cell_instrumented(coord, config).0
}

/// Like [`run_cell`], additionally returning the cell's deterministic perf
/// accounting ([`CellPerf`]). The [`CellReport`] is byte-identical to the
/// uninstrumented run — the perf numbers come from a [`HammerEventTally`]
/// subscribed to the attack pipeline's event bus (subscribers only observe)
/// plus counters the simulated machine maintains anyway.
pub fn run_cell_instrumented(coord: &CellCoord, config: &CampaignConfig) -> (CellReport, CellPerf) {
    let seed = cell_seed(config.base_seed, coord);
    let mut report = CellReport {
        machine: coord.machine.name().to_string(),
        defense: coord.defense.kind(),
        profile: coord.profile.name().to_string(),
        hammer_mode: coord.hammer_mode,
        pattern: coord.pattern,
        victim: coord.victim,
        repetition: coord.repetition,
        cell_seed: seed,
        escalated: false,
        attempts: 0,
        flips_observed: 0,
        exploitable_flips: 0,
        trr_refreshes: 0,
        implicit_dram_rate: 0.0,
        seconds_to_first_flip: None,
        seconds_to_escalation: None,
        exploit_succeeded: None,
        time_to_exploit: None,
        route: None,
        error: None,
    };

    let machine_cfg = coord.machine.config(coord.profile.profile(), seed);
    let synthesis_cfg = config.synthesis_config(&machine_cfg);
    let kernel_cfg = if config.superpages {
        KernelConfig::with_superpages()
    } else {
        KernelConfig::default_config()
    };
    let mut sys = coord.defense.build_system(machine_cfg, kernel_cfg);

    // The harness's iteration accounting is an event subscriber: it counts
    // what the hammer loop announces instead of re-deriving it from the
    // outcome afterwards (and it keeps counting through attacks that abort).
    let mut tally = HammerEventTally::new();
    let outcome = (|tally: &mut HammerEventTally| {
        let pid = sys.spawn_process(1000).map_err(|e| e.to_string())?;
        if coord.defense == DefenseChoice::Cta && config.cta_cred_spray > 0 {
            // Spray struct cred objects via sibling processes (the paper's
            // CTA bypass); slab density in kernel memory is what matters.
            sys.spawn_processes(config.cta_cred_spray, 1000)
                .map_err(|e| e.to_string())?;
        }
        let attack = PtHammer::new(config.attack_config(seed, coord.defense, coord.hammer_mode))
            .map_err(|e| e.to_string())?;
        let mut options = RunOptions::new().observed_by(tally as &mut dyn EventSink);
        // Pattern cells resolve their pattern deterministically from the
        // cell seed (synthesized cells run the search) and execute it
        // through the injected `PatternHammer` strategy — same pipeline,
        // same event stream.
        if let Some(choice) = coord.pattern {
            let pattern = choice.resolve(&synthesis_cfg, seed);
            let strategy = Box::new(PatternHammer::new(pattern).map_err(|e| e.to_string())?);
            options = options.strategy(strategy);
        }
        // Victim cells drive the chosen victim through the `Exploit` phase;
        // default cells rely on `RunOptions`' PTE-takeover default.
        if let Some(choice) = coord.victim {
            options = options.victim(choice.build());
        }
        attack
            .run_with(&mut sys, pid, options)
            .map_err(|e| e.to_string())
    })(&mut tally);

    match outcome {
        Ok(outcome) => {
            debug_assert_eq!(
                tally.iterations, outcome.hammer_iterations,
                "event tally and outcome must agree on iteration counts"
            );
            report.escalated = outcome.escalated;
            report.attempts = outcome.attempts;
            report.flips_observed = outcome.flips_observed;
            report.exploitable_flips = outcome.exploitable_flips;
            report.implicit_dram_rate = outcome.implicit_dram_rate;
            report.seconds_to_first_flip = outcome.seconds_to_first_flip();
            report.seconds_to_escalation = outcome.seconds_to_escalation();
            report.route = outcome.victim_outcome.map(|v| v.route_label());
            if coord.victim.is_some() {
                report.exploit_succeeded = Some(outcome.victim_outcome.is_some_and(|v| v.success));
                report.time_to_exploit = outcome
                    .victim_outcome
                    .and_then(|v| v.time_to_exploit_iterations);
            }
        }
        Err(err) => report.error = Some(err),
    }
    let perf = CellPerf {
        counters: MachineCounters::capture(sys.machine()),
        hammer_iterations: tally.iterations,
        sim_cycles: sys.rdtsc(),
    };
    // Mitigation interventions are part of the result row: campaigns on
    // TRR-era machines report how often the sampler fired against the cell
    // (0 — and no JSON key — on the paper's TRR-free DDR3 machines).
    report.trr_refreshes = perf.counters.dram.trr_refreshes;
    (report, perf)
}

/// Runs every cell of `matrix` on a worker pool and aggregates the results.
///
/// Cells are independent and seeded from their coordinates, and rows are
/// collected in canonical matrix order, so the returned report — and its
/// [`canonical JSON`](CampaignReport::to_canonical_json) — is identical for
/// any `config.threads`.
///
/// # Panics
///
/// Panics if the matrix fails [`ScenarioMatrix::validate`].
pub fn run_campaign(matrix: &ScenarioMatrix, config: &CampaignConfig) -> CampaignReport {
    run_campaign_instrumented(matrix, config).0
}

/// Like [`run_campaign`], additionally returning the campaign's aggregated
/// perf accounting: every cell's [`CellPerf`] summed in canonical matrix
/// order. The aggregate is deterministic for a given matrix and config (cell
/// counters are seed-derived, and summation is order-independent), so perf
/// reports can gate on it.
pub fn run_campaign_instrumented(
    matrix: &ScenarioMatrix,
    config: &CampaignConfig,
) -> (CampaignReport, CellPerf) {
    matrix
        .validate()
        .unwrap_or_else(|e| panic!("invalid scenario matrix: {e}"));
    let cells = matrix.cells();
    let pool = ThreadPoolBuilder::new()
        .num_threads(config.threads)
        .build()
        .expect("worker pool");
    let results: Vec<(CellReport, CellPerf)> = pool.install(|| {
        cells
            .into_par_iter()
            .map(|coord| run_cell_instrumented(&coord, config))
            .collect()
    });
    let mut rows = Vec::with_capacity(results.len());
    let mut perf = CellPerf::default();
    for (row, cell_perf) in results {
        rows.push(row);
        perf.absorb(&cell_perf);
    }
    (assemble_report(matrix, config, rows), perf)
}

/// Assembles the canonical [`CampaignReport`] from per-cell rows (already in
/// canonical matrix order): recomputes summaries and stamps the campaign
/// inputs. Shared by the direct runner and the store-backed resume/merge
/// paths, so every way of obtaining the rows emits identical bytes.
pub(crate) fn assemble_report(
    matrix: &ScenarioMatrix,
    config: &CampaignConfig,
    rows: Vec<CellReport>,
) -> CampaignReport {
    let summaries = CampaignReport::summarize(matrix, &rows);
    CampaignReport {
        schema_version: REPORT_SCHEMA_VERSION,
        base_seed: config.base_seed,
        matrix: matrix.clone(),
        superpages: config.superpages,
        cells: rows,
        summaries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::ProfileChoice;
    use pthammer_machine::MachineChoice;

    #[test]
    fn attack_config_caps_zebram_attempts() {
        let config = CampaignConfig::ci(1);
        let zebram = config.attack_config(9, DefenseChoice::Zebram, HammerMode::default());
        let none = config.attack_config(9, DefenseChoice::None, HammerMode::default());
        assert!(zebram.max_attempts <= config.zebram_attempt_cap);
        assert_eq!(none.max_attempts, config.max_attempts);
        assert!(zebram.validate().is_ok());
        assert!(none.validate().is_ok());
    }

    #[test]
    fn attack_config_threads_the_hammer_mode_through() {
        let config = CampaignConfig::ci(1);
        let cfg = config.attack_config(9, DefenseChoice::None, HammerMode::ImplicitOneLocation);
        assert_eq!(cfg.hammer_mode, HammerMode::ImplicitOneLocation);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn single_cell_runs_and_reports_coordinates() {
        let config = CampaignConfig::ci(11);
        let coord = CellCoord {
            machine: MachineChoice::TestSmall,
            defense: DefenseChoice::None,
            profile: ProfileChoice::Invulnerable,
            hammer_mode: HammerMode::default(),
            pattern: None,
            victim: None,
            repetition: 0,
        };
        let row = run_cell(&coord, &config);
        assert_eq!(row.machine, "Test Small");
        assert_eq!(row.defense, pthammer_kernel::DefenseKind::Undefended);
        assert_eq!(row.profile, "invulnerable");
        assert_eq!(row.hammer_mode, HammerMode::ImplicitDoubleSided);
        assert_eq!(row.flips_observed, 0, "invulnerable DRAM cannot flip");
        assert!(!row.escalated);
        assert!(row.error.is_none(), "{:?}", row.error);
        assert_eq!(row.cell_seed, cell_seed(11, &coord));
    }

    #[test]
    #[should_panic(expected = "invalid scenario matrix")]
    fn empty_matrix_panics() {
        let matrix = ScenarioMatrix::new(vec![], vec![], vec![], 0);
        let _ = run_campaign(&matrix, &CampaignConfig::ci(1));
    }

    #[test]
    fn two_and_eight_worker_threads_emit_identical_json() {
        // Small matrix (4 invulnerable cells) so this stays cheap; the full
        // 30-cell check lives in tests/campaign_matrix.rs.
        let matrix = ScenarioMatrix::new(
            vec![MachineChoice::TestSmall],
            vec![DefenseChoice::None, DefenseChoice::Zebram],
            vec![ProfileChoice::Invulnerable],
            2,
        );
        let mut config = CampaignConfig::ci(77);
        config.max_attempts = 2;
        config.threads = 2;
        let two = run_campaign(&matrix, &config).to_canonical_json();
        config.threads = 8;
        let eight = run_campaign(&matrix, &config).to_canonical_json();
        assert_eq!(two, eight, "thread count leaked into campaign JSON");
    }
}

//! Parallel scenario-matrix campaign harness for the PThammer reproduction.
//!
//! The paper's central claims (Tables I–II, Figures 3–6, Section IV-G) are
//! sweeps over *machines × defenses × DRAM flip profiles*; this crate makes
//! that sweep a first-class, declarative object:
//!
//! * [`ScenarioMatrix`] — the cross product of [`MachineChoice`],
//!   [`DefenseChoice`], [`ProfileChoice`], optional pattern and
//!   [`VictimChoice`] axes, and per-cell seed repetitions.
//! * [`CampaignConfig`] — attack scale, worker count, and the campaign base
//!   seed.
//! * [`run_campaign`] — fans the cells out across worker threads and
//!   aggregates every [`AttackOutcome`](pthammer::AttackOutcome) into a
//!   [`CampaignReport`] with per-defense summaries and deltas against the
//!   undefended baseline.
//! * [`run_campaign_resumable`] / [`run_campaign_shard`] / [`merge_stores`]
//!   — the same cells through the content-addressed
//!   [`CellStore`], making campaigns killable,
//!   resumable, and shardable across invocations with byte-identical
//!   reports (see [`resume`]).
//!
//! # Determinism
//!
//! Every cell derives its seed as a hash of the campaign base seed and the
//! cell's *coordinates* (machine, profile, repetition index — deliberately
//! not the defense, so defense rows attack identical weak-cell maps) — never
//! of its position in the matrix or the thread that happens to run it. Cells
//! never share mutable state, and results are collected in matrix order, so
//! the same base seed produces **byte-identical canonical JSON** regardless
//! of worker count or scheduling. The committed golden snapshots under
//! `tests/golden/` pin this property in CI.
//!
//! # Example
//!
//! ```no_run
//! use pthammer_harness::{CampaignConfig, ProfileChoice, ScenarioMatrix};
//! use pthammer_defenses::DefenseChoice;
//! use pthammer_machine::MachineChoice;
//!
//! let matrix = ScenarioMatrix::new(
//!     vec![MachineChoice::TestSmall],
//!     DefenseChoice::all(),
//!     vec![ProfileChoice::Ci],
//!     3,
//! );
//! let report = pthammer_harness::run_campaign(&matrix, &CampaignConfig::ci(42));
//! println!("{}", report.to_canonical_json());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod decode;
mod matrix;
mod report;
pub mod resume;
mod seeding;
mod victim_cache;

pub use campaign::{
    run_campaign, run_campaign_instrumented, run_cell, run_cell_instrumented, CampaignConfig,
    CellPerf,
};
pub use decode::cell_report_from_json;
pub use matrix::{CellCoord, ProfileChoice, ScenarioMatrix};
pub use report::{CampaignReport, CellReport, DefenseSummary};
pub use resume::{
    cell_store_key, merge_stores, run_campaign_resumable, run_campaign_resumable_instrumented,
    run_campaign_shard, store_manifest, MergeStats, ResumeStats,
};
pub use seeding::{cell_seed, CELL_SEED_SCHEMA_VERSION};
pub use victim_cache::{
    flip_profile_from_json, ProfileSource, VictimProfileCache, VICTIM_PROFILE_SCHEMA_VERSION,
};

pub use pthammer::{HammerMode, VictimChoice};
pub use pthammer_defenses::DefenseChoice;
pub use pthammer_kernel::DefenseKind;
pub use pthammer_machine::MachineChoice;
pub use pthammer_store::{CellKey, CellLookup, CellStore, ShardSpec, StoreError, StoreManifest};

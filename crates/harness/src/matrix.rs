//! The declarative scenario matrix: which cells a campaign runs.

use pthammer::{HammerMode, VictimChoice};
use pthammer_defenses::DefenseChoice;
use pthammer_dram::FlipModelProfile;
use pthammer_machine::MachineChoice;
use pthammer_patterns::PatternChoice;
use serde::ser::JsonWriter;
use serde::{Deserialize, Serialize};

/// Named weak-cell profile, the third axis of the matrix.
///
/// [`FlipModelProfile`] itself is a bag of numbers; campaigns select one of
/// the named presets so reports stay self-describing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProfileChoice {
    /// Paper-calibrated thresholds (minutes of simulated time to a flip).
    Paper,
    /// Fast profile for examples and scaled sweeps.
    Fast,
    /// CI profile: very weak cells, flips within a few hundred activations.
    Ci,
    /// Rowhammer-free DRAM (control group).
    Invulnerable,
}

impl ProfileChoice {
    /// All named profiles.
    pub fn all() -> Vec<ProfileChoice> {
        vec![
            ProfileChoice::Paper,
            ProfileChoice::Fast,
            ProfileChoice::Ci,
            ProfileChoice::Invulnerable,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ProfileChoice::Paper => "paper",
            ProfileChoice::Fast => "fast",
            ProfileChoice::Ci => "ci",
            ProfileChoice::Invulnerable => "invulnerable",
        }
    }

    /// The concrete weak-cell profile.
    pub fn profile(&self) -> FlipModelProfile {
        match self {
            ProfileChoice::Paper => FlipModelProfile::paper(),
            ProfileChoice::Fast => FlipModelProfile::fast(),
            ProfileChoice::Ci => FlipModelProfile::ci(),
            ProfileChoice::Invulnerable => FlipModelProfile::invulnerable(),
        }
    }
}

/// Coordinates of one campaign cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellCoord {
    /// Machine model under attack.
    pub machine: MachineChoice,
    /// Active defense.
    pub defense: DefenseChoice,
    /// Weak-cell profile of the DRAM.
    pub profile: ProfileChoice,
    /// Hammer strategy the cell's attack pipeline runs.
    pub hammer_mode: HammerMode,
    /// Many-sided pattern source, if any: `Some` replaces the hammer
    /// strategy with a `PatternHammer` executing the chosen pattern
    /// (synthesized cells search from the cell seed).
    pub pattern: Option<PatternChoice>,
    /// Victim the cell's `Exploit` phase drives, if explicitly swept:
    /// `Some` injects the chosen victim and makes the cell report its
    /// exploit outcome; `None` runs the default PTE-takeover victim and
    /// serializes exactly as before the axis existed.
    pub victim: Option<VictimChoice>,
    /// Repetition index (varies only the seed).
    pub repetition: u32,
}

/// Declarative cross product of campaign axes.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct ScenarioMatrix {
    /// Machines axis.
    pub machines: Vec<MachineChoice>,
    /// Defenses axis.
    pub defenses: Vec<DefenseChoice>,
    /// Profiles axis.
    pub profiles: Vec<ProfileChoice>,
    /// Hammer-strategy axis (defaults to the paper's implicit double-sided
    /// mode only).
    pub hammer_modes: Vec<HammerMode>,
    /// Pattern axis (defaults to `[None]`: no many-sided patterns). `Some`
    /// entries run a synthesized/preset pattern through `PatternHammer`
    /// instead of the cell's hammer mode.
    pub patterns: Vec<Option<PatternChoice>>,
    /// Victim axis (defaults to `[None]`: the default PTE-takeover victim,
    /// serialized as before the axis existed). `Some` entries inject the
    /// chosen victim into the `Exploit` phase and make cells report
    /// `exploit_succeeded` / `time_to_exploit`.
    pub victims: Vec<Option<VictimChoice>>,
    /// Seed repetitions per (machine, defense, profile, mode, pattern,
    /// victim) combination.
    pub repetitions: u32,
}

// Hand-written so a default-mode-only, pattern-free, victim-free matrix
// serializes exactly as it did before those axes existed: the
// `hammer_modes`, `patterns` and `victims` keys are emitted only for
// campaigns that actually sweep them, keeping the golden snapshot
// byte-identical.
impl Serialize for ScenarioMatrix {
    fn serialize(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("machines");
        self.machines.serialize(w);
        w.key("defenses");
        self.defenses.serialize(w);
        w.key("profiles");
        self.profiles.serialize(w);
        if !self.is_default_mode_only() {
            w.key("hammer_modes");
            self.hammer_modes.serialize(w);
        }
        if !self.is_pattern_free() {
            w.key("patterns");
            self.patterns.serialize(w);
        }
        if !self.is_victim_free() {
            w.key("victims");
            self.victims.serialize(w);
        }
        w.key("repetitions");
        self.repetitions.serialize(w);
        w.end_object();
    }
}

impl ScenarioMatrix {
    /// Builds a matrix from explicit axes, with the hammer-mode axis pinned
    /// to the paper's default mode.
    pub fn new(
        machines: Vec<MachineChoice>,
        defenses: Vec<DefenseChoice>,
        profiles: Vec<ProfileChoice>,
        repetitions: u32,
    ) -> Self {
        Self {
            machines,
            defenses,
            profiles,
            hammer_modes: vec![HammerMode::default()],
            patterns: vec![None],
            victims: vec![None],
            repetitions,
        }
    }

    /// Replaces the hammer-mode axis (builder style).
    pub fn with_hammer_modes(mut self, hammer_modes: Vec<HammerMode>) -> Self {
        self.hammer_modes = hammer_modes;
        self
    }

    /// Replaces the pattern axis (builder style). `None` entries run the
    /// cell's hammer mode; `Some` entries run the chosen many-sided pattern.
    pub fn with_patterns(mut self, patterns: Vec<Option<PatternChoice>>) -> Self {
        self.patterns = patterns;
        self
    }

    /// Replaces the victim axis (builder style). `None` entries run the
    /// default PTE-takeover victim without exploit-outcome keys; `Some`
    /// entries inject the chosen victim and report its outcome.
    pub fn with_victims(mut self, victims: Vec<Option<VictimChoice>>) -> Self {
        self.victims = victims;
        self
    }

    /// True when the hammer-mode axis is exactly the paper default — the
    /// case whose serialization (and golden snapshot) predates the axis.
    pub fn is_default_mode_only(&self) -> bool {
        self.hammer_modes.len() == 1 && self.hammer_modes[0].is_default()
    }

    /// True when the pattern axis is exactly `[None]` — the case whose
    /// serialization (and golden snapshot) predates the axis.
    pub fn is_pattern_free(&self) -> bool {
        self.patterns == [None]
    }

    /// True when the victim axis is exactly `[None]` — the case whose
    /// serialization (and golden snapshot) predates the axis.
    pub fn is_victim_free(&self) -> bool {
        self.victims == [None]
    }

    /// The pinned victim-sweep regression matrix: the small test machine,
    /// undefended plus CTA, the `ci` and `invulnerable` profiles, every
    /// shipped victim — 1 × 2 × 2 × 3 × 2 = 24 cells showing per-victim
    /// exploit outcomes on the same flips.
    pub fn victim_sweep_ci() -> Self {
        Self::new(
            vec![MachineChoice::TestSmall],
            vec![DefenseChoice::None, DefenseChoice::Cta],
            vec![ProfileChoice::Ci, ProfileChoice::Invulnerable],
            2,
        )
        .with_victims(VictimChoice::all().into_iter().map(Some).collect())
    }

    /// The pinned TRR-era regression matrix: the plain CI machine and its
    /// TRR twin, undefended, the `ci` and `invulnerable` profiles, with the
    /// pattern axis sweeping none → synthesized → the uniform 4-sided
    /// control — 2 × 1 × 2 × 3 × 2 = 24 cells showing "double-sided dies
    /// under TRR, synthesized n-sided still flips".
    pub fn trr_pattern_ci() -> Self {
        Self::new(
            vec![MachineChoice::TestSmall, MachineChoice::TestSmallTrr],
            vec![DefenseChoice::None],
            vec![ProfileChoice::Ci, ProfileChoice::Invulnerable],
            2,
        )
        .with_patterns(vec![
            None,
            Some(PatternChoice::Synthesized),
            Some(PatternChoice::UniformFourSided),
        ])
    }

    /// The CI-scale regression matrix pinned by the golden snapshots: the
    /// small test machine, every defense, the `ci` and `invulnerable`
    /// profiles, three repetitions — 5 × 2 × 3 = 30 cells.
    pub fn ci_default() -> Self {
        Self::new(
            vec![MachineChoice::TestSmall],
            DefenseChoice::all(),
            vec![ProfileChoice::Ci, ProfileChoice::Invulnerable],
            3,
        )
    }

    /// Number of cells in the matrix.
    pub fn len(&self) -> usize {
        self.machines.len()
            * self.defenses.len()
            * self.profiles.len()
            * self.hammer_modes.len()
            * self.patterns.len()
            * self.victims.len()
            * self.repetitions as usize
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes the cells in canonical (machine-major) order. Cell order
    /// determines report row order — and nothing else; per-cell seeds hash
    /// coordinates, not positions.
    pub fn cells(&self) -> Vec<CellCoord> {
        let mut cells = Vec::with_capacity(self.len());
        for &machine in &self.machines {
            for &defense in &self.defenses {
                for &profile in &self.profiles {
                    for &hammer_mode in &self.hammer_modes {
                        for &pattern in &self.patterns {
                            for &victim in &self.victims {
                                for repetition in 0..self.repetitions {
                                    cells.push(CellCoord {
                                        machine,
                                        defense,
                                        profile,
                                        hammer_mode,
                                        pattern,
                                        victim,
                                        repetition,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// Validates the matrix.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem if any axis is empty.
    pub fn validate(&self) -> Result<(), String> {
        if self.machines.is_empty() {
            return Err("matrix has no machines".to_string());
        }
        if self.defenses.is_empty() {
            return Err("matrix has no defenses".to_string());
        }
        if self.profiles.is_empty() {
            return Err("matrix has no profiles".to_string());
        }
        if self.hammer_modes.is_empty() {
            return Err("matrix has no hammer modes".to_string());
        }
        if self.patterns.is_empty() {
            return Err("matrix has no pattern-axis entries".to_string());
        }
        if self.victims.is_empty() {
            return Err("matrix has no victim-axis entries".to_string());
        }
        if self.repetitions == 0 {
            return Err("matrix has zero repetitions".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_default_has_at_least_24_cells() {
        let m = ScenarioMatrix::ci_default();
        assert!(m.len() >= 24, "CI matrix too small: {}", m.len());
        assert_eq!(m.cells().len(), m.len());
        assert!(m.validate().is_ok());
        assert!(m.is_default_mode_only());
    }

    #[test]
    fn cells_are_in_canonical_order_and_unique() {
        let m = ScenarioMatrix::ci_default().with_hammer_modes(HammerMode::all());
        let cells = m.cells();
        assert_eq!(cells.len(), m.len());
        let mut seen = std::collections::HashSet::new();
        for c in &cells {
            assert!(seen.insert(format!("{c:?}")), "duplicate cell {c:?}");
        }
        // First block: first machine, first defense, first profile, first
        // mode.
        assert_eq!(cells[0].machine, m.machines[0]);
        assert_eq!(cells[0].defense, m.defenses[0]);
        assert_eq!(cells[0].hammer_mode, m.hammer_modes[0]);
        assert_eq!(cells[0].repetition, 0);
    }

    #[test]
    fn empty_axes_are_rejected() {
        let mut m = ScenarioMatrix::ci_default();
        m.defenses.clear();
        assert!(m.validate().is_err());
        assert!(m.is_empty());
        let mut m = ScenarioMatrix::ci_default();
        m.repetitions = 0;
        assert!(m.validate().is_err());
        let m = ScenarioMatrix::ci_default().with_hammer_modes(vec![]);
        assert!(m.validate().is_err());
    }

    #[test]
    fn profile_names_round_trip() {
        for p in ProfileChoice::all() {
            assert!(!p.name().is_empty());
            let _ = p.profile();
        }
        assert_eq!(ProfileChoice::Ci.name(), "ci");
    }

    #[test]
    fn pattern_axis_extends_the_cross_product() {
        let m = ScenarioMatrix::trr_pattern_ci();
        assert_eq!(m.len(), 24, "2 machines × 2 profiles × 3 patterns × 2");
        assert!(!m.is_pattern_free());
        assert!(m.validate().is_ok());
        let cells = m.cells();
        assert_eq!(cells.len(), m.len());
        assert_eq!(cells[0].pattern, None);
        assert!(cells
            .iter()
            .any(|c| c.pattern == Some(PatternChoice::Synthesized)));
        let m = ScenarioMatrix::ci_default();
        assert!(m.is_pattern_free());
        assert!(m.cells().iter().all(|c| c.pattern.is_none()));
        let m = ScenarioMatrix::ci_default().with_patterns(vec![]);
        assert!(m.validate().is_err());
    }

    #[test]
    fn victim_axis_extends_the_cross_product() {
        let m = ScenarioMatrix::victim_sweep_ci();
        assert_eq!(m.len(), 24, "2 defenses × 2 profiles × 3 victims × 2");
        assert!(!m.is_victim_free());
        assert!(m.validate().is_ok());
        let cells = m.cells();
        assert_eq!(cells.len(), m.len());
        assert!(cells
            .iter()
            .any(|c| c.victim == Some(VictimChoice::KeyRecovery)));
        let m = ScenarioMatrix::ci_default();
        assert!(m.is_victim_free());
        assert!(m.cells().iter().all(|c| c.victim.is_none()));
        let m = ScenarioMatrix::ci_default().with_victims(vec![]);
        assert!(m.validate().is_err());
    }

    #[test]
    fn victim_free_matrix_serializes_without_the_axis() {
        let mut w = JsonWriter::new(false);
        ScenarioMatrix::ci_default().serialize(&mut w);
        assert!(!w.into_string().contains("victims"));

        let mut w = JsonWriter::new(false);
        ScenarioMatrix::victim_sweep_ci().serialize(&mut w);
        let json = w.into_string();
        assert!(
            json.contains("\"victims\":[\"pte-takeover\",\"cred-corruption\",\"key-recovery\"]"),
            "{json}"
        );
        // Key order: the axis sits between patterns (when present) /
        // profiles and repetitions.
        assert!(json.find("profiles").unwrap() < json.find("victims").unwrap());
        assert!(json.find("victims").unwrap() < json.find("repetitions").unwrap());
    }

    #[test]
    fn pattern_free_matrix_serializes_without_the_axis() {
        let mut w = JsonWriter::new(false);
        ScenarioMatrix::ci_default().serialize(&mut w);
        assert!(!w.into_string().contains("patterns"));

        let mut w = JsonWriter::new(false);
        ScenarioMatrix::trr_pattern_ci().serialize(&mut w);
        let json = w.into_string();
        assert!(
            json.contains("\"patterns\":[null,\"synthesized\",\"uniform-4-sided\"]"),
            "{json}"
        );
        // Key order: the axis sits between hammer modes (when present) /
        // profiles and repetitions.
        assert!(json.find("profiles").unwrap() < json.find("patterns").unwrap());
        assert!(json.find("patterns").unwrap() < json.find("repetitions").unwrap());
    }

    #[test]
    fn default_mode_matrix_serializes_without_the_axis() {
        let mut w = JsonWriter::new(false);
        ScenarioMatrix::ci_default().serialize(&mut w);
        let json = w.into_string();
        assert!(
            !json.contains("hammer_modes"),
            "default-mode matrix must serialize as before the axis existed: {json}"
        );

        let mut w = JsonWriter::new(false);
        ScenarioMatrix::ci_default()
            .with_hammer_modes(HammerMode::all())
            .serialize(&mut w);
        let json = w.into_string();
        // The axis uses the same canonical kebab-case spelling as cell rows
        // and the `--mode` CLI.
        assert!(json.contains("\"hammer_modes\":[\"implicit-double-sided\""));
        // Key order: the axis sits between profiles and repetitions.
        let modes_at = json.find("hammer_modes").unwrap();
        assert!(json.find("profiles").unwrap() < modes_at);
        assert!(modes_at < json.find("repetitions").unwrap());
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the *small, deterministic* subset of the `rand` 0.8 API that the simulator
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over integer ranges. The generator is a fixed
//! xoshiro256++ so every seed produces an identical stream on every platform
//! and toolchain — a property the golden-snapshot regression tier depends on.
//!
//! This is **not** a cryptographic RNG and does not aim for `rand`'s
//! statistical guarantees; it only needs to be uniform enough for the
//! simulation and bit-for-bit reproducible forever.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Range types that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, seeded via SplitMix64 exactly
    /// like the upstream `rand` crate seeds its small RNGs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5usize..=6);
            assert!((5..=6).contains(&w));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX / 2)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX / 2)).collect();
        assert_ne!(va, vb);
    }
}

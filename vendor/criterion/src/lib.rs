//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Provides the authoring surface the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`black_box`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! simple mean-of-samples timer instead of criterion's statistics engine.
//! Benches compile and run with `cargo bench` and print per-function mean
//! iteration times.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to each bench function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(None, name, self.sample_size, f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(Some(&self.name), name, self.sample_size, f);
        self
    }

    /// Finishes the group (no-op in the offline stub).
    pub fn finish(self) {}
}

/// Timer handle passed to the closure given to `bench_function`.
#[derive(Debug, Default)]
pub struct Bencher {
    samples_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, recording one sample of `iters_per_sample` iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let iters = self.iters_per_sample.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        self.samples_ns.push(elapsed / iters as f64);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(group: Option<&str>, name: &str, samples: usize, mut f: F) {
    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    // Calibration pass: one iteration to estimate cost and pick a batch size
    // aiming for ~1 ms per sample (capped so slow benches stay bounded).
    let mut calib = Bencher {
        samples_ns: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut calib);
    let est_ns = calib.samples_ns.last().copied().unwrap_or(1.0).max(1.0);
    let iters = ((1_000_000.0 / est_ns) as u64).clamp(1, 10_000);

    let mut bencher = Bencher {
        samples_ns: Vec::new(),
        iters_per_sample: iters,
    };
    for _ in 0..samples {
        f(&mut bencher);
    }
    let n = bencher.samples_ns.len().max(1) as f64;
    let mean = bencher.samples_ns.iter().sum::<f64>() / n;
    let min = bencher
        .samples_ns
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    println!("bench {label:<50} mean {mean:>12.1} ns/iter  (min {min:.1}, {samples} samples x {iters} iters)");
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("counts", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no crates.io access, so this proc-macro crate
//! re-implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! subset of shapes this workspace uses — structs with named fields, tuple
//! (newtype) structs, and enums whose variants are unit, tuple, or
//! struct-like — without depending on `syn`/`quote`. The generated
//! `Serialize` impl walks the companion `serde` crate's
//! [`JsonWriter`](../serde/ser/struct.JsonWriter.html) and mirrors
//! `serde_json`'s externally-tagged data model; `Deserialize` emits the
//! marker impl the trait bound requires.
//!
//! Supported field attribute: `#[serde(skip)]` (field omitted from output).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(Vec<Field>),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    shape: Shape,
}

fn is_punct(tok: &TokenTree, c: char) -> bool {
    matches!(tok, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(tok: &TokenTree, s: &str) -> bool {
    matches!(tok, TokenTree::Ident(id) if id.to_string() == s)
}

/// Advances past a leading run of outer attributes, recording whether any of
/// them was `#[serde(skip)]`-ish. Returns (new index, saw_skip).
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut skip = false;
    while i < toks.len() && is_punct(&toks[i], '#') {
        if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
            let body = g.stream().to_string();
            if body.starts_with("serde") && body.contains("skip") {
                skip = true;
            }
        }
        i += 2;
    }
    (i, skip)
}

/// Advances past an optional `pub` / `pub(...)` visibility.
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if i < toks.len() && is_ident(&toks[i], "pub") {
        i += 1;
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                i += 1;
            }
        }
    }
    i
}

/// Advances past a type (or any token run) up to a top-level `,`, consuming
/// the comma itself. Angle brackets are depth-tracked so commas inside
/// generics don't terminate early.
fn skip_to_top_level_comma(toks: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        if let TokenTree::Punct(p) = &toks[i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (j, skip) = skip_attrs(&toks, i);
        i = skip_vis(&toks, j);
        if i >= toks.len() {
            break;
        }
        let name = toks[i].to_string();
        i += 1; // field name
        i += 1; // ':'
        i = skip_to_top_level_comma(&toks, i);
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    let mut index = 0usize;
    while i < toks.len() {
        let (j, skip) = skip_attrs(&toks, i);
        i = skip_vis(&toks, j);
        if i >= toks.len() {
            break;
        }
        i = skip_to_top_level_comma(&toks, i);
        fields.push(Field {
            name: index.to_string(),
            skip,
        });
        index += 1;
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (j, _) = skip_attrs(&toks, i);
        i = j;
        if i >= toks.len() {
            break;
        }
        let name = toks[i].to_string();
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = parse_tuple_fields(g.stream()).len();
                i += 1;
                VariantFields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                i += 1;
                VariantFields::Named(f)
            }
            _ => VariantFields::Unit,
        };
        // Skip a possible `= discriminant` and the trailing comma.
        while i < toks.len() && !is_punct(&toks[i], ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = skip_attrs(&toks, 0);
    i = skip_vis(&toks, i);
    let kind = toks[i].to_string();
    i += 1;
    let name = toks[i].to_string();
    i += 1;
    if i < toks.len() && is_punct(&toks[i], '<') {
        panic!("offline serde_derive stub does not support generic types (deriving for `{name}`)");
    }
    let shape = match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(parse_tuple_fields(g.stream()))
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("offline serde_derive stub cannot derive for `{other}` items"),
    };
    Input { name, shape }
}

fn gen_named_fields_body(fields: &[Field], accessor: &str) -> String {
    let mut body = String::from("__w.begin_object();\n");
    for f in fields.iter().filter(|f| !f.skip) {
        body.push_str(&format!(
            "__w.key(\"{n}\"); ::serde::Serialize::serialize({a}{n}, __w);\n",
            n = f.name,
            a = accessor,
        ));
    }
    body.push_str("__w.end_object();\n");
    body
}

fn gen_serialize(input: &Input) -> String {
    let body = match &input.shape {
        Shape::NamedStruct(fields) => gen_named_fields_body(fields, "&self."),
        Shape::TupleStruct(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            match live.len() {
                0 => "__w.begin_array(); __w.end_array();\n".to_string(),
                1 => format!(
                    "::serde::Serialize::serialize(&self.{}, __w);\n",
                    live[0].name
                ),
                _ => {
                    let mut b = String::from("__w.begin_array();\n");
                    for f in &live {
                        b.push_str(&format!(
                            "__w.elem(); ::serde::Serialize::serialize(&self.{}, __w);\n",
                            f.name
                        ));
                    }
                    b.push_str("__w.end_array();\n");
                    b
                }
            }
        }
        Shape::UnitStruct => "__w.null();\n".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.fields {
                    VariantFields::Unit => {
                        arms.push_str(&format!(
                            "{ty}::{v} => {{ __w.string(\"{v}\"); }}\n",
                            ty = input.name,
                            v = v.name
                        ));
                    }
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let mut inner = String::new();
                        if *n == 1 {
                            inner.push_str("::serde::Serialize::serialize(__f0, __w);\n");
                        } else {
                            inner.push_str("__w.begin_array();\n");
                            for b in &binds {
                                inner.push_str(&format!(
                                    "__w.elem(); ::serde::Serialize::serialize({b}, __w);\n"
                                ));
                            }
                            inner.push_str("__w.end_array();\n");
                        }
                        arms.push_str(&format!(
                            "{ty}::{v}({bl}) => {{ __w.begin_object(); __w.key(\"{v}\"); {inner} __w.end_object(); }}\n",
                            ty = input.name,
                            v = v.name,
                            bl = binds.join(", "),
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let inner = gen_named_fields_body(fields, "");
                        arms.push_str(&format!(
                            "{ty}::{v} {{ {bl} }} => {{ __w.begin_object(); __w.key(\"{v}\"); {inner} __w.end_object(); }}\n",
                            ty = input.name,
                            v = v.name,
                            bl = binds.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}\n")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self, __w: &mut ::serde::ser::JsonWriter) {{\n{body}}}\n}}\n",
        name = input.name
    )
}

/// Derives the workspace's JSON-writing `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the marker `Deserialize` trait (the offline stub has no decoding
/// path; golden-snapshot comparisons are byte-level).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    format!("impl ::serde::Deserialize for {} {{}}\n", parsed.name)
        .parse()
        .expect("generated Deserialize impl parses")
}

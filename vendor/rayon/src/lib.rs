//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of rayon the campaign harness uses: `into_par_iter().map(..)
//! .collect::<Vec<_>>()` plus [`ThreadPoolBuilder`] / [`ThreadPool::install`]
//! for pinning the worker count. Work is distributed over
//! [`std::thread::scope`] workers pulling from a shared queue; results are
//! written back **by item index**, so the collected order (and therefore any
//! serialized output) is independent of thread count and scheduling — the
//! property the golden-snapshot determinism tests assert.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Worker count installed by [`ThreadPool::install`] for the current
    /// thread; 0 means "use the default".
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

/// The number of workers a parallel iterator will use right now.
pub fn current_num_threads() -> usize {
    let installed = CURRENT_THREADS.with(Cell::get);
    if installed == 0 {
        default_threads()
    } else {
        installed
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type mirroring `rayon::ThreadPoolBuildError`; never constructed.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with the default worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins the worker count (0 keeps the default).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails; the `Result` mirrors rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A (virtual) pool: in this stub a pool is just a pinned worker count that
/// parallel iterators observe while a closure runs under [`install`](Self::install).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's worker count installed.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let previous = CURRENT_THREADS.with(|c| c.replace(self.num_threads));
        let result = f();
        CURRENT_THREADS.with(|c| c.set(previous));
        result
    }

    /// The pinned worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Runs `f(item)` for every item on a scoped worker pool, returning results
/// in item order regardless of scheduling.
fn parallel_map<I: Send, R: Send, F: Fn(I) -> R + Sync>(items: Vec<I>, f: F) -> Vec<R> {
    let workers = current_num_threads().max(1).min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<R>>> = slots.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= slots.len() {
                    break;
                }
                let item = slots[idx]
                    .lock()
                    .expect("item slot poisoned")
                    .take()
                    .expect("item taken twice");
                let out = f(item);
                *results[idx].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker skipped an item")
        })
        .collect()
}

/// A materialized parallel iterator over owned items.
#[derive(Debug)]
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Maps every item through `f` in parallel.
    pub fn map<R: Send, F: Fn(I) -> R + Sync>(self, f: F) -> MapIter<I, R, F> {
        MapIter {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator; consumed by [`collect`](Self::collect).
#[derive(Debug)]
pub struct MapIter<I, R, F: Fn(I) -> R> {
    items: Vec<I>,
    f: F,
}

impl<I: Send, R: Send, F: Fn(I) -> R + Sync> MapIter<I, R, F> {
    /// Executes the map on the installed pool, preserving item order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(parallel_map(self.items, self.f))
    }
}

/// Conversion into a parallel iterator, mirroring rayon's trait of the same
/// name.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Reference parallel iteration (`par_iter`), mirroring rayon.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed element type.
    type Item: Send;
    /// Creates a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..100).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 3));
        let pool1 = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out: Vec<usize> = pool1.install(|| (0..10).into_par_iter().map(|i| i + 1).collect());
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn par_iter_over_refs() {
        let xs = vec![1u64, 2, 3];
        let out: Vec<u64> = xs.par_iter().map(|&x| x * x).collect();
        assert_eq!(out, vec![1, 4, 9]);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let work = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(7);
        let seq: Vec<u64> = (0..64).map(work).collect();
        for n in [1usize, 2, 8] {
            let pool = ThreadPoolBuilder::new().num_threads(n).build().unwrap();
            let par: Vec<u64> = pool.install(|| (0..64).into_par_iter().map(work).collect());
            assert_eq!(par, seq, "thread count {n} changed results");
        }
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the authoring subset the workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! integer-range / `any` / `prop::collection::vec` / `prop::sample::select`
//! strategies, and the `prop_assert*` macros. Cases are generated from a
//! deterministic per-test RNG (seeded by the test name), so failures
//! reproduce exactly; there is **no shrinking** — the failing inputs are
//! printed instead.

#![forbid(unsafe_code)]

/// Per-run configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 128 }
    }
}

pub mod test_runner {
    //! Deterministic case generation and failure plumbing.

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    /// Deterministic xorshift-style RNG seeded from the test name.
    #[derive(Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary label (the test name).
        pub fn deterministic(label: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h | 1 }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            // SplitMix64.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinator types.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return lo + rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    /// Strategy returned by [`crate::arbitrary::any`].
    #[derive(Debug)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Self {
                _marker: core::marker::PhantomData,
            }
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_any_int!(u8, u16, u32, u64, usize);
}

pub mod arbitrary {
    //! `any::<T>()`, mirroring `proptest::arbitrary`.

    use crate::strategy::Any;

    /// Strategy producing arbitrary values of `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: crate::strategy::Strategy,
    {
        Any::default()
    }
}

pub mod prop {
    //! The `prop::` combinator namespace.

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy for `Vec<S::Value>` with a random length from `size`.
        #[derive(Debug)]
        pub struct VecStrategy<S> {
            elem: S,
            size: core::ops::Range<usize>,
        }

        /// `prop::collection::vec(element_strategy, size_range)`.
        pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.size.clone().sample(rng);
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }

    pub mod sample {
        //! Sampling strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy choosing uniformly from a fixed set.
        #[derive(Debug)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        /// `prop::sample::select(options)`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "cannot select from empty options");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                self.options[(rng.next_u64() % self.options.len() as u64) as usize].clone()
            }
        }
    }
}

pub mod prelude {
    //! Glob import mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Declares deterministic property tests, mirroring `proptest!`'s syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    let inputs = format!(concat!($(stringify!($arg), " = {:?}, "),*), $(&$arg),*);
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!("property {} failed on case {case} [{inputs}]: {}", stringify!($name), e.0);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert_eq!(b, b);
        }

        #[test]
        fn vec_strategy_respects_size(xs in prop::collection::vec(0u8..5, 1..9)) {
            prop_assert!(!xs.is_empty() && xs.len() < 9);
            prop_assert!(xs.iter().all(|&v| v < 5));
        }

        #[test]
        fn select_draws_from_options(v in prop::sample::select(vec![2u32, 4, 8])) {
            prop_assert!(v == 2 || v == 4 || v == 8);
        }
    }

    #[test]
    fn deterministic_between_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

//! The JSON writer behind the offline [`Serialize`](crate::Serialize) trait.

/// Streaming JSON writer with compact and pretty modes.
///
/// Output is canonical: compact mode emits no optional whitespace, pretty
/// mode uses two-space indentation and `\n` line endings. Comma placement is
/// tracked per container so generated `Serialize` impls only need to call
/// [`key`](Self::key) / [`elem`](Self::elem) before each member.
#[derive(Debug)]
pub struct JsonWriter {
    out: String,
    pretty: bool,
    /// One entry per open container: `true` once a member has been written.
    stack: Vec<bool>,
}

impl JsonWriter {
    /// Creates a writer; `pretty` selects indented output.
    pub fn new(pretty: bool) -> Self {
        Self {
            out: String::new(),
            pretty,
            stack: Vec::new(),
        }
    }

    /// Consumes the writer, returning the JSON text.
    pub fn into_string(self) -> String {
        self.out
    }

    fn newline_indent(&mut self) {
        if self.pretty {
            self.out.push('\n');
            for _ in 0..self.stack.len() {
                self.out.push_str("  ");
            }
        }
    }

    /// Separator bookkeeping before a member of the innermost container.
    fn member(&mut self) {
        if let Some(has_members) = self.stack.last_mut() {
            if *has_members {
                self.out.push(',');
            }
            *has_members = true;
            self.newline_indent();
        }
    }

    /// Opens a JSON object.
    pub fn begin_object(&mut self) {
        self.out.push('{');
        self.stack.push(false);
    }

    /// Closes the innermost JSON object.
    pub fn end_object(&mut self) {
        let had_members = self.stack.pop().unwrap_or(false);
        if had_members {
            self.newline_indent();
        }
        self.out.push('}');
    }

    /// Opens a JSON array.
    pub fn begin_array(&mut self) {
        self.out.push('[');
        self.stack.push(false);
    }

    /// Closes the innermost JSON array.
    pub fn end_array(&mut self) {
        let had_members = self.stack.pop().unwrap_or(false);
        if had_members {
            self.newline_indent();
        }
        self.out.push(']');
    }

    /// Writes an object key (including the separator from the previous
    /// member); the caller then writes the value.
    pub fn key(&mut self, name: &str) {
        self.member();
        self.push_escaped(name);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
    }

    /// Marks the start of an array element (separator only).
    pub fn elem(&mut self) {
        self.member();
    }

    /// Writes a pre-rendered JSON token (number, `true`, `null`, ...).
    pub fn raw(&mut self, token: String) {
        self.out.push_str(&token);
    }

    /// Writes a JSON string with escaping.
    pub fn string(&mut self, s: &str) {
        self.push_escaped(s);
    }

    /// Writes `null`.
    pub fn null(&mut self) {
        self.out.push_str("null");
    }

    fn push_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::JsonWriter;

    #[test]
    fn compact_object() {
        let mut w = JsonWriter::new(false);
        w.begin_object();
        w.key("a");
        w.raw("1".into());
        w.key("b");
        w.string("x");
        w.end_object();
        assert_eq!(w.into_string(), "{\"a\":1,\"b\":\"x\"}");
    }

    #[test]
    fn pretty_object() {
        let mut w = JsonWriter::new(true);
        w.begin_object();
        w.key("a");
        w.raw("1".into());
        w.end_object();
        assert_eq!(w.into_string(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonWriter::new(true);
        w.begin_object();
        w.key("xs");
        w.begin_array();
        w.end_array();
        w.end_object();
        assert_eq!(w.into_string(), "{\n  \"xs\": []\n}");
    }

    #[test]
    fn control_chars_escaped() {
        let mut w = JsonWriter::new(false);
        w.string("a\u{1}b");
        assert_eq!(w.into_string(), "\"a\\u0001b\"");
    }
}

//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this crate provides the
//! surface the workspace needs: a [`Serialize`] trait that renders values as
//! **canonical JSON** through [`ser::JsonWriter`], a marker [`Deserialize`]
//! trait, and re-exported derive macros from the companion `serde_derive`
//! stub. Canonical means: struct fields in declaration order, no optional
//! whitespace in compact mode, fixed float formatting — so equal values
//! always produce byte-identical JSON, which the golden-snapshot regression
//! tier depends on.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod ser;

/// Types that can render themselves as JSON through a [`ser::JsonWriter`].
///
/// Unlike upstream serde there is no generic `Serializer` abstraction: JSON
/// is the only backend this workspace emits.
pub trait Serialize {
    /// Writes `self` into `w`.
    fn serialize(&self, w: &mut ser::JsonWriter);
}

/// Marker trait mirroring upstream serde's `Deserialize`.
///
/// The offline stub has no decoding path (golden snapshots are compared
/// byte-for-byte), but deriving it keeps the workspace source-compatible
/// with the real crate.
pub trait Deserialize {}

// --- primitive impls -------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, w: &mut ser::JsonWriter) {
                w.raw(itoa(*self as i128));
            }
        }
    )*};
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, w: &mut ser::JsonWriter) {
                w.raw(utoa(*self as u128));
            }
        }
    )*};
}

fn utoa(v: u128) -> String {
    let mut s = String::new();
    let mut v = v;
    if v == 0 {
        return "0".to_string();
    }
    let mut digits = [0u8; 40];
    let mut n = 0;
    while v > 0 {
        digits[n] = b'0' + (v % 10) as u8;
        v /= 10;
        n += 1;
    }
    for i in (0..n).rev() {
        s.push(digits[i] as char);
    }
    s
}

fn itoa(v: i128) -> String {
    if v < 0 {
        format!("-{}", utoa(v.unsigned_abs()))
    } else {
        utoa(v as u128)
    }
}

impl_uint!(u8, u16, u32, u64, usize, u128);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize(&self, w: &mut ser::JsonWriter) {
        w.raw(if *self { "true" } else { "false" }.to_string());
    }
}

fn float_repr(v: f64) -> String {
    if !v.is_finite() {
        // serde_json emits null for non-finite floats.
        return "null".to_string();
    }
    let s = format!("{v}");
    // Keep floats visually floats ("1.0", not "1") so the output is stable
    // against integer/float type changes in the report structs.
    if s.contains('.') || s.contains('e') || s.contains("inf") {
        s
    } else {
        format!("{s}.0")
    }
}

impl Serialize for f64 {
    fn serialize(&self, w: &mut ser::JsonWriter) {
        w.raw(float_repr(*self));
    }
}

impl Serialize for f32 {
    fn serialize(&self, w: &mut ser::JsonWriter) {
        w.raw(float_repr(f64::from(*self)));
    }
}

impl Serialize for str {
    fn serialize(&self, w: &mut ser::JsonWriter) {
        w.string(self);
    }
}

impl Serialize for String {
    fn serialize(&self, w: &mut ser::JsonWriter) {
        w.string(self);
    }
}

impl Serialize for char {
    fn serialize(&self, w: &mut ser::JsonWriter) {
        w.string(&self.to_string());
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, w: &mut ser::JsonWriter) {
        (**self).serialize(w);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self, w: &mut ser::JsonWriter) {
        (**self).serialize(w);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, w: &mut ser::JsonWriter) {
        match self {
            Some(v) => v.serialize(w),
            None => w.null(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, w: &mut ser::JsonWriter) {
        w.begin_array();
        for item in self {
            w.elem();
            item.serialize(w);
        }
        w.end_array();
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, w: &mut ser::JsonWriter) {
        self.as_slice().serialize(w);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, w: &mut ser::JsonWriter) {
        self.as_slice().serialize(w);
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self, w: &mut ser::JsonWriter) {
        w.begin_array();
        w.elem();
        self.0.serialize(w);
        w.elem();
        self.1.serialize(w);
        w.end_array();
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self, w: &mut ser::JsonWriter) {
        w.begin_array();
        w.elem();
        self.0.serialize(w);
        w.elem();
        self.1.serialize(w);
        w.elem();
        self.2.serialize(w);
        w.end_array();
    }
}

impl<K: Serialize + Ord, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn serialize(&self, w: &mut ser::JsonWriter) {
        // Canonical form: sorted array of [key, value] pairs, so hash-order
        // never leaks into the output.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        w.begin_array();
        for (k, v) in entries {
            w.elem();
            (k, v).serialize(w);
        }
        w.end_array();
    }
}

impl<T: Serialize + Ord, S> Serialize for std::collections::HashSet<T, S> {
    fn serialize(&self, w: &mut ser::JsonWriter) {
        let mut entries: Vec<&T> = self.iter().collect();
        entries.sort();
        entries.serialize(w);
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize(&self, w: &mut ser::JsonWriter) {
        w.begin_array();
        for item in self {
            w.elem();
            item.serialize(w);
        }
        w.end_array();
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize(&self, w: &mut ser::JsonWriter) {
        w.begin_array();
        for item in self {
            w.elem();
            item.serialize(w);
        }
        w.end_array();
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize(&self, w: &mut ser::JsonWriter) {
        w.begin_object();
        for (k, v) in self {
            w.key(k);
            v.serialize(w);
        }
        w.end_object();
    }
}

#[cfg(test)]
mod tests {
    use super::ser::JsonWriter;
    use super::Serialize;

    fn render<T: Serialize>(v: &T, pretty: bool) -> String {
        let mut w = JsonWriter::new(pretty);
        v.serialize(&mut w);
        w.into_string()
    }

    #[test]
    fn primitives() {
        assert_eq!(render(&42u64, false), "42");
        assert_eq!(render(&-7i64, false), "-7");
        assert_eq!(render(&true, false), "true");
        assert_eq!(render(&1.5f64, false), "1.5");
        assert_eq!(render(&1.0f64, false), "1.0");
        assert_eq!(render(&f64::NAN, false), "null");
        assert_eq!(render(&"a\"b\n".to_string(), false), "\"a\\\"b\\n\"");
        assert_eq!(render(&Option::<u64>::None, false), "null");
        assert_eq!(render(&Some(3u32), false), "3");
    }

    #[test]
    fn containers() {
        assert_eq!(render(&vec![1u8, 2, 3], false), "[1,2,3]");
        assert_eq!(render(&(1u8, "x"), false), "[1,\"x\"]");
        let empty: Vec<u8> = vec![];
        assert_eq!(render(&empty, false), "[]");
    }

    #[test]
    fn pretty_arrays_indent() {
        let s = render(&vec![1u8, 2], true);
        assert_eq!(s, "[\n  1,\n  2\n]");
    }
}

//! Offline stand-in for `serde_json`: renders any [`serde::Serialize`] value
//! as canonical JSON text (compact or pretty), and parses JSON text into a
//! dynamically-typed [`Value`] tree (the subset the cell store uses to read
//! cached reports back). There is no derive-based `Deserialize` decoding —
//! consumers pattern-match the [`Value`] themselves, and the workspace's
//! golden-snapshot tests compare JSON byte-for-byte.

#![forbid(unsafe_code)]

use serde::ser::JsonWriter;
use serde::Serialize;

mod value;

pub use value::{from_str, Value};

/// Error type mirroring upstream `serde_json`'s. The offline writer is
/// infallible; only the [`from_str`] parsing path constructs errors.
#[derive(Debug)]
pub struct Error(pub(crate) String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails; the `Result` mirrors upstream `serde_json`'s signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = JsonWriter::new(false);
    value.serialize(&mut w);
    Ok(w.into_string())
}

/// Serializes `value` as pretty-printed JSON (two-space indent, `\n` line
/// endings) — canonical across platforms.
///
/// # Errors
///
/// Never fails; the `Result` mirrors upstream `serde_json`'s signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = JsonWriter::new(true);
    value.serialize(&mut w);
    Ok(w.into_string())
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    struct Point {
        x: u64,
        y: Option<f64>,
        #[serde(skip)]
        #[allow(dead_code)]
        scratch: u64,
        label: String,
    }

    #[derive(Serialize, Deserialize)]
    enum Shape {
        Dot,
        Line { from: u64, to: u64 },
        Tagged(u32),
        Pair(u32, u32),
    }

    #[derive(Serialize, Deserialize)]
    struct Wrapper(u64);

    #[test]
    fn derived_struct_compact() {
        let p = Point {
            x: 3,
            y: Some(1.25),
            scratch: 999,
            label: "hi".into(),
        };
        assert_eq!(
            super::to_string(&p).unwrap(),
            "{\"x\":3,\"y\":1.25,\"label\":\"hi\"}"
        );
    }

    #[test]
    fn derived_enum_variants() {
        assert_eq!(super::to_string(&Shape::Dot).unwrap(), "\"Dot\"");
        assert_eq!(
            super::to_string(&Shape::Line { from: 1, to: 2 }).unwrap(),
            "{\"Line\":{\"from\":1,\"to\":2}}"
        );
        assert_eq!(
            super::to_string(&Shape::Tagged(7)).unwrap(),
            "{\"Tagged\":7}"
        );
        assert_eq!(
            super::to_string(&Shape::Pair(1, 2)).unwrap(),
            "{\"Pair\":[1,2]}"
        );
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(super::to_string(&Wrapper(9)).unwrap(), "9");
    }

    #[test]
    fn pretty_struct() {
        let p = Point {
            x: 1,
            y: None,
            scratch: 0,
            label: "a".into(),
        };
        assert_eq!(
            super::to_string_pretty(&p).unwrap(),
            "{\n  \"x\": 1,\n  \"y\": null,\n  \"label\": \"a\"\n}"
        );
    }
}

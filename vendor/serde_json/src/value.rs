//! The dynamically-typed JSON tree and its recursive-descent parser.
//!
//! Numbers keep their exact representation class: integral literals that fit
//! stay `U64`/`I64` (so 64-bit seeds survive a round trip bit-for-bit), and
//! fractional/exponent literals parse as `F64` — Rust's `str::parse::<f64>`
//! of a shortest-representation decimal returns the identical bit pattern
//! the writer formatted, which the byte-identical resume/merge guarantees of
//! the campaign store depend on.

use crate::Error;

/// A parsed JSON value.
///
/// Objects preserve the key order of the source text as a `(key, value)`
/// list; canonical writers emit a fixed order, so positional access is
/// stable, but lookups should go through [`Value::get`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal that fits in `u64`.
    U64(u64),
    /// A negative integer literal that fits in `i64`.
    I64(i64),
    /// A fractional / exponent literal (or an integer too large for 64 bits).
    F64(f64),
    /// A string literal (escapes resolved).
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as a key-order-preserving list of entries.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's entries, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Parses a complete JSON document into a [`Value`].
///
/// # Errors
///
/// Returns a positioned description of the first syntax error, including
/// trailing non-whitespace after the document.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume the longest escape-free UTF-8 run in one slice.
            while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: require the paired low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => unreachable!("loop above stops only at `\"` or `\\`"),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let unit = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number spans are ASCII");
        if !fractional {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(v) = digits.parse::<u64>() {
                    if let Ok(neg) = i64::try_from(-i128::from(v)) {
                        return Ok(Value::I64(neg));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| {
            Error(format!(
                "invalid number `{text}` ending at byte {}",
                self.pos
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" false ").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::U64(42));
        assert_eq!(from_str("-7").unwrap(), Value::I64(-7));
        assert_eq!(from_str("1.5").unwrap(), Value::F64(1.5));
        assert_eq!(from_str("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn u64_integers_round_trip_exactly() {
        let v = from_str(&u64::MAX.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        let v = from_str(&i64::MIN.to_string()).unwrap();
        assert_eq!(v.as_i64(), Some(i64::MIN));
    }

    #[test]
    fn shortest_repr_floats_round_trip_exactly() {
        for bits in [
            0x3FB999999999999Au64,
            0x3FF0000000000001,
            0x7FEFFFFFFFFFFFFF,
        ] {
            let f = f64::from_bits(bits);
            let text = format!("{f}");
            let text = if text.contains('.') || text.contains('e') {
                text
            } else {
                format!("{text}.0")
            };
            let parsed = from_str(&text).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), bits, "{text}");
        }
    }

    #[test]
    fn containers_and_lookup() {
        let v = from_str("{\"a\": [1, {\"b\": null}], \"c\": \"x\"}").unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert!(arr[1].get("b").unwrap().is_null());
        assert_eq!(v.get("missing"), None);
        assert_eq!(from_str("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(from_str("{}").unwrap(), Value::Object(vec![]));
    }

    #[test]
    fn escapes_resolve() {
        let v = from_str("\"a\\\"b\\n\\t\\\\\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("a\"b\n\t\\A😀"));
    }

    #[test]
    fn writer_output_parses_back() {
        // The parser must accept everything the workspace's canonical writer
        // emits, pretty or compact.
        let mut w = serde::ser::JsonWriter::new(true);
        w.begin_object();
        w.key("seed");
        w.raw(u64::MAX.to_string());
        w.key("rate");
        w.raw("0.1".to_string());
        w.key("route");
        w.null();
        w.key("name");
        w.string("a\"b\n");
        w.end_object();
        let v = from_str(&w.into_string()).unwrap();
        assert_eq!(v.get("seed").and_then(Value::as_u64), Some(u64::MAX));
        assert_eq!(v.get("rate").and_then(Value::as_f64), Some(0.1));
        assert!(v.get("route").unwrap().is_null());
        assert_eq!(v.get("name").and_then(Value::as_str), Some("a\"b\n"));
    }

    #[test]
    fn syntax_errors_are_positioned() {
        assert!(from_str("").is_err());
        assert!(from_str("{\"a\":}").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str("\"open").is_err());
        assert!(from_str("nul").is_err());
        let err = from_str("{\"a\" 1}").unwrap_err().to_string();
        assert!(err.contains("byte"), "{err}");
    }
}
